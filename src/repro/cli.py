"""Command-line interface: ``python -m repro [options] file``.

Plays the role of the compiler wrapper in the paper's Figure 1: files that
type-check pass straight through; ill-typed files get the conventional
message *and* the ranked search suggestions.  ``--fix`` additionally applies
the top suggestion(s) and prints the patched source (the quick-fix flow).

Batch mode: ``python -m repro explain [--jobs N] FILE... [--dir DIR]``
explains many programs per invocation — concurrently across worker
processes with ``--jobs`` — and prints one summary table (plus full
reports with ``--verbose``).  ``--jobs`` on the single-file form instead
parallelizes candidate checks *within* that one search; either way the
answers are byte-identical to a serial run (see
:mod:`repro.core.parallel`).

MiniML is assumed for ``.ml`` files; ``--cpp`` (or a ``.cpp``/``.cc``
extension) selects the MiniCpp front end.

Observability (see :mod:`repro.obs`): ``--trace out.json`` records a
Perfetto-loadable span trace of the whole search, ``--metrics`` prints the
full counter/histogram table, ``--cache`` turns on the oracle memo cache
(whose hit/miss counts then show up under ``--stats``/``--metrics``).
The flight recorder adds ``--events out.jsonl`` (one schema-versioned JSON
line per lifecycle event) and ``--report out.json`` (the RunReport summary
document); ``python -m repro report FILE... [--diff BASELINE]`` reads
either format back and prints aggregate tables / regression diffs.
``--profile`` runs the search under cProfile and prints the top hotspots
(recorded as a ``profile`` event in the event log when one is open, so
``repro report`` folds them into its tables).

Robustness (see :mod:`repro.core.resilience`): ``--deadline SECONDS`` puts
a wall-clock budget on the search; budget/deadline exhaustion and oracle
crashes degrade to best-effort suggestions (noted on stderr) instead of
aborting.  Exit codes distinguish the outcomes — see ``--help``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence, Tuple

#: Exit codes (documented in ``--help``): the CLI never leaks a raw
#: traceback for input problems or exhausted search budgets.
EXIT_OK = 0
EXIT_SUGGESTIONS = 1
EXIT_INPUT_ERROR = 2
EXIT_NO_ANSWER = 3
#: Conventional 128+SIGINT: Ctrl-C tears the pool down and exits cleanly.
EXIT_INTERRUPTED = 130

_EPILOG = """\
exit codes:
  0  the program type-checks (or --fix fully repaired it)
  1  ill-typed; the type-error report (and any suggestions) was printed
  2  input error: unreadable/undecodable file, or a parse error
  3  ill-typed but no suggestion found — including searches degraded by
     --max-calls, --deadline, or oracle crashes (noted on stderr)
  130  interrupted (Ctrl-C): worker processes are torn down promptly

batch mode:
  python -m repro explain [--jobs N] FILE... [--dir DIR]
  explains many files per invocation (see `repro explain --help`)

report mode:
  python -m repro report FILE... [--diff BASELINE]
  aggregates --events/--report output (see `repro report --help`)

cache mode:
  python -m repro cache stats|clear|compact --store PATH
  inspects/maintains a persistent verdict store (see `repro cache --help`)
"""

_BATCH_EPILOG = """\
exit codes (aggregated over the whole batch, worst wins):
  0  every program type-checks
  1  at least one program is ill-typed (suggestions were found for all
     ill-typed programs)
  2  at least one input error (unreadable file or parse error)
  3  at least one ill-typed program got no suggestions
"""


def _jobs_arg(value: str):
    """``--jobs`` accepts a positive integer or the string ``auto``."""
    if value == "auto":
        return value
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        )
    if n < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {n}")
    return n


def _fraction_arg(value: str) -> float:
    """``--shed-fraction`` accepts a float in (0, 1]."""
    try:
        fraction = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if not (0.0 < fraction <= 1.0):
        raise argparse.ArgumentTypeError(
            f"shed fraction must be in (0, 1], got {value}"
        )
    return fraction


def _positive_float_arg(value: str) -> float:
    """A strictly positive float (watchdog limits)."""
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Search-based type-error messages (SEMINAL, PLDI 2007).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("file", help="source file (.ml for MiniML, .cpp for MiniCpp)")
    parser.add_argument("--cpp", action="store_true", help="treat the input as MiniCpp")
    parser.add_argument("--top", type=int, default=3, metavar="N",
                        help="number of suggestions to print (default 3)")
    parser.add_argument("--no-triage", action="store_true",
                        help="disable triage (the paper's Section 3 baseline)")
    parser.add_argument("--checker-only", action="store_true",
                        help="print only the conventional type-checker message")
    parser.add_argument("--fix", action="store_true",
                        help="apply suggestions until the program type-checks "
                             "and print the patched source (MiniML only)")
    parser.add_argument("--max-calls", type=int, default=20000, metavar="N",
                        help="oracle-call budget (default 20000)")
    parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                        help="wall-clock budget for the search; on expiry the "
                             "best-so-far suggestions are reported with a "
                             "degradation note (MiniML only)")
    parser.add_argument("--stats", action="store_true",
                        help="print oracle-call statistics")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome/Perfetto trace of the search "
                             "(open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the full telemetry counter table")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="write the flight-recorder event log (JSONL, "
                             "one lifecycle event per line; read it back "
                             "with `python -m repro report`) (MiniML only)")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the RunReport summary JSON (metrics + "
                             "degradation + timing; diffable via "
                             "`repro report --diff`) (MiniML only)")
    parser.add_argument("--cache", action="store_true",
                        help="memoize oracle results by structural key "
                             "(hit/miss counts appear under --stats)")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="persistent cross-run verdict store directory: "
                             "warm-start the oracle from verdicts persisted "
                             "by earlier runs, and persist this run's "
                             "(answers are byte-identical either way; "
                             "maintain with `python -m repro cache`) "
                             "(MiniML only)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="disable prefix-reuse incremental typechecking: "
                             "re-infer every candidate from the empty "
                             "environment (escape hatch / benchmarking)")
    parser.add_argument("--no-depprune", action="store_true",
                        help="disable dependency-pruned re-checking (the "
                             "per-declaration outcome table); answers are "
                             "identical either way (benchmarking)")
    parser.add_argument("--no-speculate", action="store_true",
                        help="disable trail-based speculative inference "
                             "(check candidates against per-check copies "
                             "instead of the live armed state with undo); "
                             "answers are identical either way "
                             "(benchmarking)")
    parser.add_argument("--profile", action="store_true",
                        help="run the search under cProfile and print the "
                             "top hotspots; with --events the profile "
                             "table also lands in the event log (and in "
                             "`repro report`)")
    parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                        help="check candidates in N worker processes "
                             "('auto' = one per CPU); answers are "
                             "byte-identical to the serial default "
                             "(MiniML only)")
    parser.add_argument("--no-dedup", action="store_true",
                        help="disable the per-search duplicate-candidate "
                             "memo (never changes answers; ablation)")
    parser.add_argument("--shed-fraction", type=_fraction_arg, default=0.85,
                        metavar="F",
                        help="fraction of --deadline after which optional "
                             "phases are shed (default 0.85) (MiniML only)")
    parser.add_argument("--candidate-timeout", type=_positive_float_arg,
                        default=None, metavar="SECONDS",
                        help="per-candidate wall-clock watchdog in pooled "
                             "workers: a check exceeding this becomes a "
                             "clean crash verdict (MiniML only)")
    parser.add_argument("--worker-rss-mb", type=_positive_float_arg,
                        default=None, metavar="MIB",
                        help="per-worker RSS ceiling: a worker past this is "
                             "recycled after its batch, the offending check "
                             "recorded as a crash verdict (MiniML only)")
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Batch mode: search-based type-error messages for many "
                    "files per invocation, optionally in parallel.",
        epilog=_BATCH_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="MiniML source files")
    parser.add_argument("--dir", metavar="DIR", default=None,
                        help="also explain every .ml file under DIR "
                             "(recursive, sorted order)")
    parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                        help="explain up to N programs concurrently in "
                             "worker processes ('auto' = one per CPU)")
    parser.add_argument("--top", type=int, default=3, metavar="N",
                        help="suggestions per program in --verbose reports")
    parser.add_argument("--no-triage", action="store_true",
                        help="disable triage in every search")
    parser.add_argument("--no-incremental", action="store_true",
                        help="disable prefix-reuse incremental typechecking")
    parser.add_argument("--no-depprune", action="store_true",
                        help="disable dependency-pruned re-checking (the "
                             "per-declaration outcome table)")
    parser.add_argument("--no-speculate", action="store_true",
                        help="disable trail-based speculative inference")
    parser.add_argument("--profile", action="store_true",
                        help="run the whole batch under cProfile and print "
                             "the top hotspots; with --events the profile "
                             "table also lands in the event log")
    parser.add_argument("--max-calls", type=int, default=20000, metavar="N",
                        help="per-program oracle-call budget (default 20000)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-program wall-clock budget")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="print the full report for every ill-typed "
                             "program after the summary table")
    parser.add_argument("--stats", action="store_true",
                        help="print aggregate oracle-call/wall-time totals")
    parser.add_argument("--metrics", action="store_true",
                        help="collect a metrics registry per program (in "
                             "the process that ran it), merge the "
                             "snapshots, and print the combined table")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="write a flight-recorder event log for the "
                             "batch: one search_finished line per program "
                             "plus the merged metrics (read it back with "
                             "`python -m repro report`)")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="persistent cross-run verdict store directory "
                             "shared by every program in the batch (and by "
                             "future runs); answers are byte-identical "
                             "with or without it")
    parser.add_argument("--shed-fraction", type=_fraction_arg, default=0.85,
                        metavar="F",
                        help="fraction of --deadline after which optional "
                             "phases are shed (default 0.85)")
    return parser


def _telemetry(args: argparse.Namespace) -> Tuple[object, object]:
    """Build the (tracer, metrics) pair the flags ask for (else nulls).

    The flight-recorder outputs (``--events``/``--report``) need a real
    registry even without ``--metrics``/``--stats``: both carry the
    counter dict.
    """
    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    want_metrics = (
        args.metrics
        or args.stats
        or getattr(args, "events", None)
        or getattr(args, "report", None)
    )
    metrics = MetricsRegistry() if want_metrics else NULL_METRICS
    tracer = Tracer(metrics=metrics if metrics is not NULL_METRICS else None) \
        if args.trace else NULL_TRACER
    return tracer, metrics


def _emit_telemetry(args: argparse.Namespace, tracer, metrics) -> None:
    """Write the trace file / print the metrics table after a run."""
    from repro.obs import NULL_TRACER

    if args.trace and tracer is not NULL_TRACER:
        tracer.write(args.trace)
        print(f"[trace written to {args.trace} — open at https://ui.perfetto.dev]",
              file=sys.stderr)
    if args.metrics:
        print(metrics.render_table(title="telemetry"), file=sys.stderr)


def _event_log(args: argparse.Namespace):
    """The flight-recorder event log ``--events`` asks for (else the null)."""
    from repro.obs import EventLog, NULL_EVENTS

    if getattr(args, "events", None):
        return EventLog(args.events)
    return NULL_EVENTS


def _close_events(args: argparse.Namespace, events, metrics) -> None:
    """Seal the event log: append the merged counter dict (so the JSONL
    file is self-contained for ``repro report --diff``) and close it."""
    from repro.obs import NULL_EVENTS, NULL_METRICS

    if events is NULL_EVENTS:
        return
    if metrics is not NULL_METRICS:
        events.emit("metrics", counters=metrics.counters())
    events.close()
    print(f"[event log written to {args.events}]", file=sys.stderr)


def _start_profile(args: argparse.Namespace):
    """Start a cProfile session when ``--profile`` asks for one (else None)."""
    if not getattr(args, "profile", False):
        return None
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def _finish_profile(profiler, events=None):
    """Stop the profiler, print the hotspot table to stderr, and (when a
    live event log is passed) record the rows as a ``profile`` event so
    ``repro report`` can aggregate them.  Returns the rows (or None)."""
    if profiler is None:
        return None
    import pstats

    from repro.obs import NULL_EVENTS
    from repro.obs.report import profile_hotspots, render_profile_rows

    profiler.disable()
    rows = profile_hotspots(pstats.Stats(profiler))
    print("profile hotspots (by tottime):", file=sys.stderr)
    print("\n".join(render_profile_rows(rows)), file=sys.stderr)
    if events is not None and events is not NULL_EVENTS:
        events.emit("profile", hotspots=rows)
    return rows


def _write_run_report(
    args: argparse.Namespace, metrics, result, elapsed_seconds: float
) -> None:
    """Write the RunReport summary document ``--report`` asks for."""
    if not getattr(args, "report", None):
        return
    from repro.core.parallel import resolve_jobs
    from repro.obs import NULL_METRICS, RunReport, suggestion_rows

    report = RunReport.from_run(
        metrics if metrics is not NULL_METRICS else None,
        label=args.file,
        jobs=resolve_jobs(args.jobs),
        elapsed_seconds=round(elapsed_seconds, 6),
        degradation=getattr(result, "degradation", None),
        suggestions=suggestion_rows(getattr(result, "suggestions", []) or []),
    )
    report.write(args.report)
    print(f"[run report written to {args.report}]", file=sys.stderr)


def _checker_only_miniml(source: str) -> int:
    """``--checker-only``: one typecheck, no search machinery at all.

    The search (and its budget/deadline) is pure overhead when only the
    conventional message is wanted — and running it here used to expose
    this path to search-side failures like ``BudgetExceeded``.
    """
    from repro.miniml import match_warnings_source
    from repro.miniml.infer import typecheck_source

    result = typecheck_source(source)
    if result.ok:
        print("The program type-checks.")
        for warning in match_warnings_source(source):
            print(warning.render())
        return EXIT_OK
    print("Type-checker:")
    message = result.error.render() if result.error is not None else ""
    print("    " + message.replace("\n", "\n    "))
    return EXIT_SUGGESTIONS


def _note_degradation(result) -> None:
    """One stderr line whenever the answer is best-effort, flags or not."""
    if result.degradation is not None and result.degradation.degraded:
        print(f"[degraded: {result.degradation.summary()}]", file=sys.stderr)


def _run_miniml(source: str, args: argparse.Namespace) -> int:
    import time

    from repro.core import Oracle, explain, fix_all
    from repro.obs import NULL_METRICS

    if args.checker_only and not args.fix:
        return _checker_only_miniml(source)

    tracer, metrics = _telemetry(args)
    events = _event_log(args)
    start = time.perf_counter()
    oracle = None
    if args.cache:
        oracle = Oracle(
            max_calls=args.max_calls,
            cache=True,
            incremental=not args.no_incremental,
            depprune=not args.no_depprune,
            speculate=not args.no_speculate,
            metrics=metrics if metrics is not NULL_METRICS else None,
        )
    telemetry_kwargs = dict(
        tracer=tracer, metrics=metrics, oracle=oracle, store=args.store,
        shed_fraction=args.shed_fraction,
    )

    if args.fix:
        profiler = _start_profile(args)
        result = fix_all(
            source,
            enable_triage=not args.no_triage,
            incremental=not args.no_incremental,
            depprune=not args.no_depprune,
            speculate=not args.no_speculate,
            max_oracle_calls=args.max_calls,
            deadline_seconds=args.deadline,
            **telemetry_kwargs,
        )
        _finish_profile(profiler, events)
        for step in result.applied:
            print(f"applied: {step}")
        print()
        print(result.source, end="" if result.source.endswith("\n") else "\n")
        _emit_telemetry(args, tracer, metrics)
        _write_run_report(args, metrics, result, time.perf_counter() - start)
        _close_events(args, events, metrics)
        if result.ok:
            print("-- the program now type-checks", file=sys.stderr)
            return EXIT_OK
        print("-- could not fully repair the program", file=sys.stderr)
        return EXIT_SUGGESTIONS if result.applied else EXIT_NO_ANSWER

    profiler = _start_profile(args)
    result = explain(
        source,
        enable_triage=not args.no_triage,
        incremental=not args.no_incremental,
        depprune=not args.no_depprune,
        speculate=not args.no_speculate,
        max_oracle_calls=args.max_calls,
        deadline_seconds=args.deadline,
        jobs=args.jobs,
        dedup=not args.no_dedup,
        candidate_timeout_seconds=args.candidate_timeout,
        worker_rss_limit_mb=args.worker_rss_mb,
        events=events,
        label=args.file,
        **telemetry_kwargs,
    )
    _finish_profile(profiler, events)
    if result.ok:
        print("The program type-checks.")
        from repro.miniml import match_warnings_source

        for warning in match_warnings_source(source):
            print(warning.render())
        _emit_telemetry(args, tracer, metrics)
        _write_run_report(args, metrics, result, time.perf_counter() - start)
        _close_events(args, events, metrics)
        return EXIT_OK
    print("Type-checker:")
    print("    " + (result.checker_message or "").replace("\n", "\n    "))
    print()
    print("Search suggestions:")
    print("    " + result.render(limit=args.top).replace("\n", "\n    "))
    _note_degradation(result)
    if args.stats:
        print(f"\n[{result.oracle_calls} oracle calls"
              + (", budget exhausted" if result.budget_exhausted else "") + "]",
              file=sys.stderr)
        if result.stats is not None:
            print(result.stats.summary(), file=sys.stderr)
        if result.degradation is not None:
            print(result.degradation.summary(), file=sys.stderr)
        hits = metrics.value("oracle.cache.hits")
        misses = metrics.value("oracle.cache.misses")
        cache_note = "" if args.cache else " (cache disabled; enable with --cache)"
        print(f"oracle cache: {hits} hits, {misses} misses{cache_note}",
              file=sys.stderr)
        reused = metrics.value("oracle.prefix.reused")
        full = metrics.value("oracle.full_checks")
        incr_note = (" (disabled with --no-incremental)"
                     if args.no_incremental else "")
        print(f"oracle prefix reuse: {reused} incremental, {full} full checks"
              f"{incr_note}", file=sys.stderr)
        replayed = metrics.value("oracle.decl.replayed")
        checked = metrics.value("oracle.decl.checked")
        skipped = metrics.value("oracle.decl.skipped")
        dep_note = (" (disabled with --no-depprune)"
                    if args.no_depprune else "")
        print(f"oracle decl reuse: {replayed} replayed, {checked} checked, "
              f"{skipped} prefix-skipped{dep_note}", file=sys.stderr)
        speculated = metrics.value("oracle.trail.speculated")
        rolled = metrics.value("oracle.trail.rolled_back")
        spec_note = (" (disabled with --no-speculate)"
                     if args.no_speculate else "")
        print(f"oracle trail speculation: {speculated} speculated, "
              f"{rolled} entries rolled back{spec_note}", file=sys.stderr)
    _emit_telemetry(args, tracer, metrics)
    _write_run_report(args, metrics, result, time.perf_counter() - start)
    _close_events(args, events, metrics)
    return EXIT_SUGGESTIONS if result.suggestions else EXIT_NO_ANSWER


def _run_cpp(source: str, args: argparse.Namespace) -> int:
    from repro.cpptemplates import explain_cpp

    tracer, metrics = _telemetry(args)
    result = explain_cpp(
        source, max_checker_calls=args.max_calls, tracer=tracer, metrics=metrics
    )
    if result.ok:
        print("The program compiles.")
        _emit_telemetry(args, tracer, metrics)
        return EXIT_OK
    print("Compiler errors:")
    print("    " + result.check.render(args.file).replace("\n", "\n    "))
    if not args.checker_only:
        print()
        print("Search suggestions:")
        for i, suggestion in enumerate(result.suggestions[: args.top], start=1):
            print(f"    {i}. " + suggestion.render().replace("\n", "\n       "))
        if not result.suggestions:
            print("    (none found)")
    if args.stats:
        print(f"\n[{result.checker_calls} compiler calls]", file=sys.stderr)
    _emit_telemetry(args, tracer, metrics)
    if args.checker_only or result.suggestions:
        return EXIT_SUGGESTIONS
    return EXIT_NO_ANSWER


def _batch_status(entry) -> str:
    if entry.error is not None:
        return "input-error"
    if entry.ok:
        return "ok"
    if entry.suggestions:
        return "ill-typed"
    return "no-answer"


def _run_batch(argv: Sequence[str]) -> int:
    """``python -m repro explain``: many programs, one summary table."""
    args = build_batch_parser().parse_args(argv)
    paths = [pathlib.Path(f) for f in args.files]
    if args.dir is not None:
        directory = pathlib.Path(args.dir)
        # Both the existence probe and the walk can raise OSError (missing
        # mount, permission, too-long name ...): any of it is an input
        # error — one stderr line and exit 2, never a traceback.
        try:
            if not directory.is_dir():
                print(f"error: not a directory: {args.dir}", file=sys.stderr)
                return EXIT_INPUT_ERROR
            paths.extend(sorted(directory.rglob("*.ml")))
        except (OSError, ValueError) as err:
            print(f"error: cannot scan {args.dir}: {err}", file=sys.stderr)
            return EXIT_INPUT_ERROR
    # One row (and one search) per distinct file: a path given as FILE that
    # also lives under --dir — or simply listed twice — is explained once,
    # under its first-seen spelling.  Dedup by resolved path so `a.ml`,
    # `./a.ml`, and the --dir walk's absolute form all collapse.
    seen_resolved = set()
    unique_paths = []
    for path in paths:
        try:
            resolved = path.resolve()
        except OSError:
            resolved = path
        if resolved in seen_resolved:
            continue
        seen_resolved.add(resolved)
        unique_paths.append(path)
    paths = unique_paths
    if not paths:
        print("error: no input files (pass FILE... and/or --dir DIR)",
              file=sys.stderr)
        return EXIT_INPUT_ERROR

    from repro.core.seminal import BatchEntry, explain_many

    # Read everything up front; unreadable files become error entries in
    # place (one bad file must not sink the batch), the rest go through
    # explain_many in input order.
    labels = [str(p) for p in paths]
    sources: List[Optional[str]] = []
    for path in paths:
        try:
            sources.append(path.read_text())
        except (OSError, UnicodeDecodeError) as err:
            sources.append(None)
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
    readable = [i for i, s in enumerate(sources) if s is not None]
    collect_metrics = bool(args.metrics or args.events or args.stats)
    profiler = _start_profile(args)
    explained = explain_many(
        [sources[i] for i in readable],
        [labels[i] for i in readable],
        jobs=args.jobs,
        top=args.top,
        enable_triage=not args.no_triage,
        incremental=not args.no_incremental,
        depprune=not args.no_depprune,
        speculate=not args.no_speculate,
        max_oracle_calls=args.max_calls,
        deadline_seconds=args.deadline,
        shed_fraction=args.shed_fraction,
        collect_metrics=collect_metrics,
        store=args.store,
    )
    profile_rows = _finish_profile(profiler)
    entries = [
        BatchEntry(label=label, error="unreadable file", report="")
        for label in labels
    ]
    for i, entry in zip(readable, explained):
        entries[i] = entry

    width = max(len(e.label) for e in entries)
    print(f"{'file'.ljust(width)}  {'status':<11}  {'sugg':>4}  {'calls':>6}  {'time':>7}")
    for e in entries:
        status = _batch_status(e)
        if e.error is not None:
            sugg = calls = elapsed = "-"
        else:
            sugg = str(e.suggestions)
            calls = str(e.oracle_calls)
            elapsed = f"{e.elapsed_seconds:.2f}s"
        mark = " [degraded]" if e.degraded else ""
        print(f"{e.label.ljust(width)}  {status:<11}  {sugg:>4}  {calls:>6}  {elapsed:>7}{mark}")
    n_ok = sum(1 for e in entries if e.error is None and e.ok)
    n_err = sum(1 for e in entries if e.error is not None)
    n_ill = sum(1 for e in entries if e.error is None and not e.ok)
    n_no_answer = sum(
        1 for e in entries if e.error is None and not e.ok and not e.suggestions
    )
    total_time = sum(e.elapsed_seconds for e in entries)
    print(f"{len(entries)} files: {n_ok} ok, {n_ill} ill-typed "
          f"({n_no_answer} without suggestions), {n_err} input errors")
    if args.stats:
        total_calls = sum(e.oracle_calls for e in entries)
        print(f"[{total_calls} oracle calls, {total_time:.2f}s search time, "
              f"jobs={args.jobs}]", file=sys.stderr)
    if collect_metrics:
        # Per-entry registries were snapshotted where each search ran
        # (possibly a worker process); merge them deterministically here.
        from repro.obs import MetricsRegistry

        merged = MetricsRegistry()
        for e in entries:
            if e.metrics:
                merged.merge_snapshot(e.metrics)
        if args.stats:
            replayed = merged.value("oracle.decl.replayed")
            checked = merged.value("oracle.decl.checked")
            skipped = merged.value("oracle.decl.skipped")
            dep_note = (" (disabled with --no-depprune)"
                        if args.no_depprune else "")
            print(f"oracle decl reuse: {replayed} replayed, {checked} checked, "
                  f"{skipped} prefix-skipped{dep_note}", file=sys.stderr)
            speculated = merged.value("oracle.trail.speculated")
            rolled = merged.value("oracle.trail.rolled_back")
            spec_note = (" (disabled with --no-speculate)"
                         if args.no_speculate else "")
            print(f"oracle trail speculation: {speculated} speculated, "
                  f"{rolled} entries rolled back{spec_note}", file=sys.stderr)
        if args.metrics:
            print(merged.render_table(title="batch telemetry"), file=sys.stderr)
        if args.events:
            from repro.obs import EventLog

            with EventLog(args.events) as events:
                for e in entries:
                    events.emit(
                        "search_finished",
                        label=e.label,
                        ok=e.ok,
                        suggestions=e.suggestions,
                        oracle_calls=e.oracle_calls,
                        degraded=e.degraded,
                        elapsed_seconds=round(e.elapsed_seconds, 6),
                        error=e.error,
                    )
                events.emit("metrics", counters=merged.counters())
                if profile_rows:
                    events.emit("profile", hotspots=profile_rows)
            print(f"[event log written to {args.events}]", file=sys.stderr)
    if args.verbose:
        for e in entries:
            if e.error is None and e.ok:
                continue
            print(f"\n== {e.label} ==")
            print(e.report)
    if n_err:
        return EXIT_INPUT_ERROR
    if n_no_answer:
        return EXIT_NO_ANSWER
    if n_ill:
        return EXIT_SUGGESTIONS
    return EXIT_OK


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        # Worker pools tear down on the way up (explain_many's executor is
        # terminated, WorkerPool.shutdown is crash-path-safe); the user
        # gets the conventional 128+SIGINT status, not a traceback.
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


def _dispatch(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "explain":
        return _run_batch(argv[1:])
    if argv and argv[0] == "report":
        from repro.obs.report import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.store.cli import cache_main

        return cache_main(argv[1:])
    args = build_parser().parse_args(argv)
    path = pathlib.Path(args.file)
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as err:
        # UnicodeDecodeError: a binary or wrongly-encoded file is an input
        # error like any other, not a traceback.
        print(f"error: cannot read {args.file}: {err}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    is_cpp = args.cpp or path.suffix in (".cpp", ".cc", ".cxx", ".C")
    try:
        if is_cpp:
            return _run_cpp(source, args)
        return _run_miniml(source, args)
    except Exception as err:  # parse errors etc.
        print(f"error: {err}", file=sys.stderr)
        return EXIT_INPUT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
