"""Command-line interface: ``python -m repro [options] file``.

Plays the role of the compiler wrapper in the paper's Figure 1: files that
type-check pass straight through; ill-typed files get the conventional
message *and* the ranked search suggestions.  ``--fix`` additionally applies
the top suggestion(s) and prints the patched source (the quick-fix flow).

MiniML is assumed for ``.ml`` files; ``--cpp`` (or a ``.cpp``/``.cc``
extension) selects the MiniCpp front end.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Search-based type-error messages (SEMINAL, PLDI 2007).",
    )
    parser.add_argument("file", help="source file (.ml for MiniML, .cpp for MiniCpp)")
    parser.add_argument("--cpp", action="store_true", help="treat the input as MiniCpp")
    parser.add_argument("--top", type=int, default=3, metavar="N",
                        help="number of suggestions to print (default 3)")
    parser.add_argument("--no-triage", action="store_true",
                        help="disable triage (the paper's Section 3 baseline)")
    parser.add_argument("--checker-only", action="store_true",
                        help="print only the conventional type-checker message")
    parser.add_argument("--fix", action="store_true",
                        help="apply suggestions until the program type-checks "
                             "and print the patched source (MiniML only)")
    parser.add_argument("--max-calls", type=int, default=20000, metavar="N",
                        help="oracle-call budget (default 20000)")
    parser.add_argument("--stats", action="store_true",
                        help="print oracle-call statistics")
    return parser


def _run_miniml(source: str, args: argparse.Namespace) -> int:
    from repro.core import explain, fix_all

    if args.fix:
        result = fix_all(
            source,
            enable_triage=not args.no_triage,
            max_oracle_calls=args.max_calls,
        )
        for step in result.applied:
            print(f"applied: {step}")
        print()
        print(result.source, end="" if result.source.endswith("\n") else "\n")
        if result.ok:
            print("-- the program now type-checks", file=sys.stderr)
            return 0
        print("-- could not fully repair the program", file=sys.stderr)
        return 1

    result = explain(
        source,
        enable_triage=not args.no_triage,
        max_oracle_calls=args.max_calls,
    )
    if result.ok:
        print("The program type-checks.")
        from repro.miniml import match_warnings_source

        for warning in match_warnings_source(source):
            print(warning.render())
        return 0
    print("Type-checker:")
    print("    " + (result.checker_message or "").replace("\n", "\n    "))
    if not args.checker_only:
        print()
        print("Search suggestions:")
        print("    " + result.render(limit=args.top).replace("\n", "\n    "))
    if args.stats:
        print(f"\n[{result.oracle_calls} oracle calls"
              + (", budget exhausted" if result.budget_exhausted else "") + "]",
              file=sys.stderr)
        if result.stats is not None:
            print(result.stats.summary(), file=sys.stderr)
    return 1


def _run_cpp(source: str, args: argparse.Namespace) -> int:
    from repro.cpptemplates import explain_cpp

    result = explain_cpp(source, max_checker_calls=args.max_calls)
    if result.ok:
        print("The program compiles.")
        return 0
    print("Compiler errors:")
    print("    " + result.check.render(args.file).replace("\n", "\n    "))
    if not args.checker_only:
        print()
        print("Search suggestions:")
        for i, suggestion in enumerate(result.suggestions[: args.top], start=1):
            print(f"    {i}. " + suggestion.render().replace("\n", "\n       "))
        if not result.suggestions:
            print("    (none found)")
    if args.stats:
        print(f"\n[{result.checker_calls} compiler calls]", file=sys.stderr)
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    path = pathlib.Path(args.file)
    try:
        source = path.read_text()
    except OSError as err:
        print(f"error: cannot read {args.file}: {err}", file=sys.stderr)
        return 2
    is_cpp = args.cpp or path.suffix in (".cpp", ".cc", ".cxx", ".C")
    try:
        if is_cpp:
            return _run_cpp(source, args)
        return _run_miniml(source, args)
    except Exception as err:  # parse errors etc.
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
