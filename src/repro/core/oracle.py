"""The type-checker oracle (paper Figure 1, right-hand box).

SEMINAL's defining architectural property is that the search procedure has
*no knowledge of type-system specifics*: it only asks "does this program
type-check?".  :class:`Oracle` wraps any ``Program -> CheckResult`` function
behind exactly that interface, adding:

* call counting (the paper's efficiency metric — Section 2.2's lazy change
  collections exist precisely to "reduce calls to the type-checker"),
* an optional budget so pathological searches terminate, and
* an optional memo cache keyed on printed source (off by default to match
  the paper; benchmarks can enable it for the ablation study).

Telemetry: an oracle holding a :class:`~repro.obs.MetricsRegistry` counts
``oracle.calls`` (and the ``.ok``/``.fail`` split), ``oracle.cache.hits``/
``oracle.cache.misses``, and ``oracle.budget_exceeded``.  The default is
the no-op :data:`~repro.obs.NULL_METRICS`, so the hot path never branches
on whether telemetry is on.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from repro.miniml.infer import CheckResult, typecheck_program
from repro.miniml.pretty import pretty_program
from repro.obs import NULL_METRICS


class BudgetExceeded(Exception):
    """The searcher used up its oracle-call budget."""

    def __init__(self, budget: int):
        super().__init__(f"oracle budget of {budget} calls exceeded")
        self.budget = budget


class TypecheckFn(Protocol):
    def __call__(self, program) -> CheckResult: ...  # pragma: no cover


class Oracle:
    """Boolean yes/no oracle with accounting.

    Parameters
    ----------
    typecheck:
        The underlying checker.  Defaults to MiniML's
        :func:`~repro.miniml.infer.typecheck_program`.
    max_calls:
        Hard budget; exceeding it raises :class:`BudgetExceeded`, which the
        searcher catches to return the suggestions found so far.
    cache:
        Memoize results by pretty-printed source.  Sound because the checker
        is deterministic and ignores spans/synthetic flags.
    render:
        Program-to-text function used as the cache key (language specific).
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to count into (default: the
        shared no-op registry).
    """

    def __init__(
        self,
        typecheck: Optional[TypecheckFn] = None,
        max_calls: Optional[int] = None,
        cache: bool = False,
        render: Callable = pretty_program,
        metrics=None,
    ):
        self._typecheck = typecheck if typecheck is not None else typecheck_program
        self.max_calls = max_calls
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache: Optional[Dict[str, CheckResult]] = {} if cache else None
        self._render = render
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def check(self, program) -> CheckResult:
        """Run the type-checker, honouring budget and cache."""
        if self._cache is not None:
            key = self._render(program)
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                self.metrics.incr("oracle.cache.hits")
                return hit
            self.cache_misses += 1
            self.metrics.incr("oracle.cache.misses")
        if self.max_calls is not None and self.calls >= self.max_calls:
            self.metrics.incr("oracle.budget_exceeded")
            raise BudgetExceeded(self.max_calls)
        self.calls += 1
        result = self._typecheck(program)
        self.metrics.incr("oracle.calls")
        self.metrics.incr("oracle.calls.ok" if result.ok else "oracle.calls.fail")
        if self._cache is not None:
            self._cache[key] = result
        return result

    def passes(self, program) -> bool:
        """The boolean question the searcher actually asks."""
        return self.check(program).ok

    def reset(self) -> None:
        """Clear accounting (and cache) between searches.

        The metrics registry is *not* cleared: it aggregates across
        searches by design (reset it explicitly if per-search numbers are
        wanted).
        """
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        if self._cache is not None:
            self._cache = {}
