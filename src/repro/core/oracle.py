"""The type-checker oracle (paper Figure 1, right-hand box).

SEMINAL's defining architectural property is that the search procedure has
*no knowledge of type-system specifics*: it only asks "does this program
type-check?".  :class:`Oracle` wraps any ``Program -> CheckResult`` function
behind exactly that interface, adding:

* call counting (the paper's efficiency metric — Section 2.2's lazy change
  collections exist precisely to "reduce calls to the type-checker"),
* an optional budget so pathological searches terminate,
* an optional memo cache keyed on structural keys (off by default to match
  the paper; benchmarks can enable it for the ablation study), and
* **prefix reuse**: after the searcher localizes the first failing
  declaration, it arms a :class:`~repro.miniml.infer.PrefixSnapshot` via
  :meth:`Oracle.arm_prefix`; every subsequent candidate that shares the
  passing prefix (which is all of them — the searcher only mutates the
  failing declaration) is then checked incrementally, inferring only the
  declarations after the snapshot point.  A candidate that *does* edit the
  prefix invalidates the snapshot and falls back to a full check, so the
  answers are identical either way.  ``cross_check=True`` re-runs every
  incremental answer from scratch and raises :class:`IncrementalMismatch`
  on disagreement — the assertion mode the equivalence tests exercise.

Fault tolerance (the resilience layer, see :mod:`repro.core.resilience`):
the oracle is the trust boundary between the search and an arbitrary
checker, so it also absorbs that checker's failures instead of letting
them kill the search:

* **Crash isolation** — an unexpected exception from a check (a
  ``RecursionError`` on a deep candidate, a latent ``UnifyError`` leak, a
  snapshot bug, an injected chaos fault) is converted into "candidate
  rejected": :meth:`check` returns a failing ``CheckResult``, counts
  ``oracle.crashes``, and keeps a bounded sample of tracebacks for the
  degradation report.  ``strict=True`` disables the guard for debugging.
* **Depth pre-check** — candidates whose AST depth exceeds ``max_depth``
  (default: derived from the interpreter's recursion limit) are rejected
  *before* inference via an identity-memoized iterative
  :class:`~repro.tree.DepthProbe`, so deep trees can never trip Python's
  recursion limit inside the checker in the first place.
* **Self-healing incremental mode** — a crash on the prefix-reuse fast
  path (e.g. a poisoned snapshot) disarms the snapshot, counts
  ``oracle.prefix.fallbacks``, and transparently re-runs the candidate
  from scratch; the cross-check assertion mode still raises, so tests
  keep their strict equivalence oracle.

Telemetry: an oracle holding a :class:`~repro.obs.MetricsRegistry` counts
``oracle.calls`` (and the ``.ok``/``.fail`` split), ``oracle.cache.hits``/
``oracle.cache.misses``, ``oracle.budget_exceeded``, the prefix-reuse set
``oracle.prefix.armed``/``oracle.prefix.reused``/
``oracle.prefix.invalidated``/``oracle.prefix.fallbacks``/
``oracle.full_checks``, and the resilience pair ``oracle.crashes``/
``oracle.depth_rejected``.  The default is the no-op
:data:`~repro.obs.NULL_METRICS`, so the hot path never branches on
whether telemetry is on.
"""

from __future__ import annotations

import sys
import traceback
from typing import Callable, Dict, List, Optional, Protocol, Union

from repro.miniml.errors import MiniMLTypeError
from repro.miniml.infer import (
    CheckResult,
    PrefixSnapshot,
    SpeculativeState,
    TrailIntegrityError,
    record_decl_table,
    replay_decl_table,
    snapshot_prefix,
    typecheck_program,
)
from repro.miniml.types import Trail, set_trail
from repro.obs import NULL_EVENTS, NULL_METRICS
from repro.store.fingerprint import NO_PREFIX_FP, prefix_fingerprint
from repro.store.verdicts import STORABLE_KINDS
from repro.tree import DepthProbe, StructuralKeyer

#: Sentinel for "derive ``max_depth`` from the interpreter's limit".
AUTO_DEPTH = "auto"

#: How a verdict was computed — the accounting "kind" a pool worker
#: observes per candidate (by diffing its oracle's counters around the
#: check) and ships home so :meth:`Oracle.account_verdict` can replay the
#: exact serial accounting for each *applied* verdict.
VERDICT_FULL = "full"                      #: from-scratch check
VERDICT_REUSED = "reused"                  #: incremental prefix-reuse path
VERDICT_DEPTH = "depth"                    #: depth pre-check rejection (free)
VERDICT_INVALIDATED = "invalidated"        #: snapshot invalidated, then full
VERDICT_FALLBACK = "fallback"              #: prefix crash healed into a full check
VERDICT_CRASH = "crash"                    #: counted call crashed (candidate rejected)
VERDICT_CRASH_UNCOUNTED = "crash_uncounted"  #: bookkeeping crash, never a call


def default_max_depth() -> int:
    """A candidate-AST depth the recursive checker can safely absorb.

    Inference spends several Python frames per AST level (dispatch,
    unification, helpers), so the ceiling leaves generous headroom under
    ``sys.getrecursionlimit()``.  Human-written programs (the paper's
    corpus tops out well under depth 100) never come close.
    """
    return max(64, sys.getrecursionlimit() // 6)


class BudgetExceeded(Exception):
    """The searcher used up its oracle-call budget."""

    def __init__(self, budget: int):
        super().__init__(f"oracle budget of {budget} calls exceeded")
        self.budget = budget


class IncrementalMismatch(AssertionError):
    """An incremental (prefix-reuse) answer diverged from the from-scratch
    answer — a soundness bug, surfaced only in ``cross_check`` mode."""


class TypecheckFn(Protocol):
    def __call__(self, program) -> CheckResult: ...  # pragma: no cover


def _error_text(result: CheckResult) -> Optional[str]:
    return result.error.render() if result.error is not None else None


class StoredError(MiniMLTypeError):
    """A checker message replayed from the persistent verdict store.

    The store persists the *rendered* text (which already includes the
    location line), so reconstruction is exact for every display path;
    the original error's ``kind`` tag rides along for fidelity.  The
    ``node`` payload is not persisted — store-served verdicts answer the
    searcher's boolean question and the CLI's message display, not
    span-level grading (which re-checks from scratch anyway).
    """

    def __init__(self, text: str, kind: Optional[str] = None):
        super().__init__(text)
        if kind:
            self.kind = kind


class Oracle:
    """Boolean yes/no oracle with accounting.

    Parameters
    ----------
    typecheck:
        The underlying checker.  Defaults to MiniML's
        :func:`~repro.miniml.infer.typecheck_program`.
    max_calls:
        Hard budget; exceeding it raises :class:`BudgetExceeded`, which the
        searcher catches to return the suggestions found so far.
    cache:
        Memoize results by structural key.  Sound because the checker is
        deterministic and ignores spans/synthetic flags; keys are built by
        an identity-memoizing :class:`~repro.tree.StructuralKeyer`, so a
        candidate differing from the root program in one declaration keys
        in time proportional to that declaration, not the whole program.
        Entries are additionally tagged with the prefix *generation* (a
        counter bumped every time a snapshot is armed, invalidated, or
        healed away), so a verdict computed under a snapshot that later
        proves poisoned or stale can never be served again.
    key_fn:
        Override the cache-key function (language specific).  ``render`` is
        accepted as a deprecated alias.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to count into (default: the
        shared no-op registry).
    incremental:
        Allow prefix reuse (on by default; :meth:`arm_prefix` becomes a
        no-op when off — the CLI's ``--no-incremental``).
    cross_check:
        Re-check every prefix-reused answer from scratch and raise
        :class:`IncrementalMismatch` if the answers differ.  Test/debug
        mode: it deliberately pays the full cost it normally saves.
    snapshot_fn:
        ``(program, n_decls) -> PrefixSnapshot | None`` used by
        :meth:`arm_prefix`.  Defaults to MiniML's
        :func:`~repro.miniml.infer.snapshot_prefix` when ``typecheck`` is
        the default; a custom ``typecheck`` must bring its own snapshot
        function (and accept a ``prefix=`` keyword) to opt into reuse.
    max_depth:
        Reject candidates whose AST depth exceeds this before invoking the
        checker (``oracle.depth_rejected``; never counted as a call).  The
        default :data:`AUTO_DEPTH` derives a limit from the interpreter's
        recursion limit; ``None`` disables the pre-check.
    strict:
        Disable crash isolation: unexpected checker exceptions propagate
        instead of rejecting the candidate.  Debug/test mode.
    crash_sample_limit:
        How many crash tracebacks to retain in :attr:`crash_samples`.
    depprune:
        Enable the declaration outcome table (dependency-pruned
        re-checking — the second reuse tier behind prefix snapshots; see
        :meth:`arm_decl_table`).  On by default; requires ``incremental``
        and a substrate with record/replay support (the MiniML default).
        Turning it off never changes answers, only ``oracle.decl.*``
        telemetry and wall time.
    speculate:
        Enable trail-based speculative checking (the third reuse tier, in
        front of the copying prefix path).  When a snapshot is armed, a
        :class:`~repro.miniml.infer.SpeculativeState` is built once —
        paying the table/value copies a single time — and each matching
        candidate's suffix is then checked against that *live* state, with
        every destructive write recorded on an undo trail and rolled back
        afterwards (``oracle.trail.speculated`` / ``.rolled_back``).  Any
        exception on the speculative path — including a
        :class:`~repro.miniml.infer.TrailIntegrityError` — degrades the
        check to the copying path (``oracle.trail.fallbacks``) without
        changing the answer.  On by default; requires ``incremental`` and
        the MiniML substrate.  Turning it off never changes answers, only
        the ``oracle.trail.*`` telemetry and wall time.
    """

    def __init__(
        self,
        typecheck: Optional[TypecheckFn] = None,
        max_calls: Optional[int] = None,
        cache: bool = False,
        key_fn: Optional[Callable] = None,
        metrics=None,
        incremental: bool = True,
        cross_check: bool = False,
        snapshot_fn: Optional[Callable] = None,
        render: Optional[Callable] = None,
        max_depth: Union[int, str, None] = AUTO_DEPTH,
        strict: bool = False,
        crash_sample_limit: int = 5,
        events=None,
        store=None,
        depprune: bool = True,
        speculate: bool = True,
    ):
        self._typecheck = typecheck if typecheck is not None else typecheck_program
        self.max_calls = max_calls
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.full_checks = 0
        self.prefix_reused = 0
        self.prefix_invalidated = 0
        self.prefix_fallbacks = 0
        self.crashes = 0
        self.depth_rejections = 0
        #: Per-declaration accounting (the dependency-pruning telemetry):
        #: declarations really inferred / replayed from the outcome table /
        #: skipped via prefix snapshots / degraded from replay to check.
        self.decls_checked = 0
        self.decls_replayed = 0
        self.decls_skipped = 0
        self.decls_degraded = 0
        self.crash_samples: List[str] = []
        self.crash_sample_limit = crash_sample_limit
        self.strict = strict
        if max_depth == AUTO_DEPTH:
            max_depth = default_max_depth()
        self.max_depth: Optional[int] = max_depth
        self._depth_probe = DepthProbe() if max_depth is not None else None
        self._cache: Optional[Dict[object, CheckResult]] = {} if cache else None
        self._keyer: Optional[StructuralKeyer] = None
        if key_fn is not None:
            self._key = key_fn
        elif render is not None:  # pre-structural-key API
            self._key = render
        else:
            self._keyer = StructuralKeyer()
            self._key = self._keyer
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.events = events if events is not None else NULL_EVENTS
        self.incremental = incremental
        self.cross_check = cross_check
        if snapshot_fn is not None:
            self._snapshot_fn: Optional[Callable] = snapshot_fn
        else:
            self._snapshot_fn = snapshot_prefix if typecheck is None else None
        self._snapshot = None
        #: Dependency-pruned re-checking (the second reuse tier, behind
        #: prefix snapshots).  Like snapshots, the record/replay functions
        #: default to the MiniML substrate only when ``typecheck`` is the
        #: default — a custom checker opts out automatically.
        self.depprune = depprune
        self._decl_record_fn: Optional[Callable] = (
            record_decl_table if typecheck is None else None
        )
        self._decl_replay_fn: Optional[Callable] = (
            replay_decl_table if typecheck is None else None
        )
        self._decl_table = None
        self._decl_pending = None
        #: Trail-based speculation (the third reuse tier).  Only the
        #: MiniML substrate knows how to build a live armed state from a
        #: PrefixSnapshot; a custom checker opts out automatically.
        self.speculate = speculate
        self._spec_supported = typecheck is None
        self._spec_state: Optional[SpeculativeState] = None
        #: Shared undo trail for the speculative decl-table replay (the
        #: same push/pop discipline the snapshot tier uses, applied to the
        #: table's recorded weak schemes).
        self._trail: Optional[Trail] = (
            Trail() if (speculate and self._spec_supported) else None
        )
        self.trail_speculated = 0
        self.trail_rolled_back = 0
        self.trail_fallbacks = 0
        #: Bumped whenever the prefix state changes (armed / invalidated /
        #: healed / reset): part of the memo key, so cached verdicts are
        #: scoped to the snapshot regime they were computed under.
        self._prefix_gen = 0
        #: Content-addressed analogue of ``_prefix_gen`` for the disk
        #: tier: the fingerprint of the armed snapshot's declarations, or
        #: :data:`~repro.store.fingerprint.NO_PREFIX_FP` when unarmed.
        #: ``None`` disables the store for the current regime (e.g. the
        #: snapshot could not be fingerprinted).
        self._prefix_fp: Optional[str] = NO_PREFIX_FP
        self.store = None
        self.store_hits = 0
        self.store_misses = 0
        self.store_writes = 0
        if store is not None:
            self.attach_store(store)

    # ------------------------------------------------------------------
    # Resilience accounting
    # ------------------------------------------------------------------

    def _record_crash(self, err: BaseException) -> None:
        """Account one isolated crash (converted to "candidate rejected")."""
        sample = "".join(
            traceback.format_exception_only(type(err), err)
        ).strip()
        self.crashes += 1
        self.metrics.incr("oracle.crashes")
        if len(self.crash_samples) < self.crash_sample_limit:
            self.crash_samples.append(sample)
        self.events.emit("oracle_crash", error=sample)

    def _record_crash_sample(self, sample: Optional[str]) -> None:
        """Account a crash that happened *elsewhere* (a pool worker shipped
        its traceback sample home with the verdict)."""
        self.crashes += 1
        self.metrics.incr("oracle.crashes")
        if sample and len(self.crash_samples) < self.crash_sample_limit:
            self.crash_samples.append(sample)
        self.events.emit("oracle_crash", error=sample or "<worker crash>")

    # ------------------------------------------------------------------
    # The persistent verdict store (disk tier behind the memo)
    # ------------------------------------------------------------------

    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.store.VerdictStore` as the disk tier.

        Probe order per check: memory memo → store → real check (the
        verdict is written back to the store on the way out).  Store hits
        still count toward ``self.calls`` (the budget and ``--stats``
        accounting, which must be byte-identical warm or cold) but *not*
        toward the ``oracle.calls`` metric, which counts real checker
        invocations — that split is what makes a warm run's metric
        strictly smaller while everything user-visible stays identical.
        Disabled under ``cross_check`` (the point of that mode is to
        re-run checks, not to skip them).
        """
        self.store = store
        n = store.take_invalidated()
        if n:
            self.metrics.incr("oracle.store.invalidated", n)
        self._drain_store_io()

    def _drain_store_io(self) -> None:
        """Surface the store's retried/failed segment I/O (see
        :meth:`VerdictStore.take_io_counters`) as ``oracle.store.retries``
        / ``oracle.store.io_errors`` metrics and a ``store_io_error``
        event — transient ``OSError``s degrade to cache misses, but the
        supervision table should still show they happened."""
        if self.store is None:
            return
        take = getattr(self.store, "take_io_counters", None)
        if take is None:
            return
        try:
            retries, errors = take()
        except Exception:
            return
        if retries:
            self.metrics.incr("oracle.store.retries", retries)
        if errors:
            self.metrics.incr("oracle.store.io_errors", errors)
            self.events.emit("store_io_error", errors=errors, retries=retries)

    @property
    def _store_active(self) -> bool:
        return (
            self.store is not None
            and not self.cross_check
            and self._prefix_fp is not None
        )

    def _stored_result(self, entry) -> CheckResult:
        error = None
        if not entry.ok and entry.err is not None:
            error = StoredError(entry.err, entry.err_kind)
        return CheckResult(ok=entry.ok, error=error)

    def _replay_stored_kind(self, kind: str) -> None:
        """Replay the accounting a real check of this ``kind`` would have
        done, so prefix-reuse counters (and hence ``--stats``) are
        byte-identical whether the verdict was computed or recalled."""
        if kind == VERDICT_REUSED:
            self.prefix_reused += 1
            self.metrics.incr("oracle.prefix.reused")
            return
        if kind == VERDICT_INVALIDATED:
            # The original check dropped the snapshot before re-checking
            # from scratch; mirror that so subsequent checks run (and
            # probe the store) under the same no-prefix regime.
            self._drop_snapshot()
            self.prefix_invalidated += 1
            self.metrics.incr("oracle.prefix.invalidated")
        self.full_checks += 1
        self.metrics.incr("oracle.full_checks")

    def _store_write(self, prefix_fp, skey, result, counters_before) -> None:
        """Persist a freshly computed verdict (parent/serial process only).

        The kind is classified from the counter deltas around the check,
        exactly as pool workers classify theirs; crash and fallback
        outcomes are never persisted — they are checker failures, not
        answers.  Write failures degrade silently (the store is a cache).
        """
        crashes, fallbacks, reused, invalidated = counters_before
        if self.crashes != crashes or self.prefix_fallbacks != fallbacks:
            return
        if self.prefix_reused > reused:
            kind = VERDICT_REUSED
        elif self.prefix_invalidated > invalidated:
            kind = VERDICT_INVALIDATED
        else:
            kind = VERDICT_FULL
        try:
            err = _error_text(result) if not result.ok else None
            err_kind = getattr(result.error, "kind", None) if result.error else None
            if self.store.put(prefix_fp, skey, result.ok, kind, err, err_kind):
                self.store_writes += 1
                self.metrics.incr("oracle.store.writes")
        except Exception:
            if self.strict:
                raise
        self._drain_store_io()

    # ------------------------------------------------------------------
    # Prefix reuse
    # ------------------------------------------------------------------

    def adopt_keyer(self, keyer) -> bool:
        """Share a search-owned :class:`~repro.tree.StructuralKeyer`.

        The searcher builds one keyer per search (dedup, oracle cache, and
        the declaration outcome table all intern into it — the
        ``search.keys.interned`` metric); adopting replaces the oracle's
        private default keyer.  No-op (False) when a custom ``key_fn`` was
        supplied — overriding it could change cache semantics.
        """
        if self._keyer is None:
            return False
        self._keyer = keyer
        self._key = keyer
        return True

    @property
    def prefix_armed(self) -> bool:
        return self._snapshot is not None

    def arm_prefix(self, program, n_decls: int) -> bool:
        """Snapshot the environment after ``program.decls[:n_decls]``.

        Called by the searcher right after localization with the index of
        the first failing declaration: everything before it passed, and
        every candidate the search generates shares those declarations by
        identity.  Returns True when a snapshot was armed; no-op (False)
        when incremental reuse is off, the substrate does not support it,
        the prefix is empty, the prefix unexpectedly fails to check, or
        the snapshot function itself crashes (counted as an isolated
        crash — a broken snapshot must not kill the search).
        """
        self._drop_snapshot()
        if not self.incremental or self._snapshot_fn is None or n_decls <= 0:
            return False
        try:
            snapshot = self._snapshot_fn(program, n_decls)
        except Exception as err:
            if self.strict:
                raise
            self._record_crash(err)
            return False
        if snapshot is None:
            return False
        self._snapshot = snapshot
        self._prefix_gen += 1
        if self.store is not None:
            try:
                self._prefix_fp = prefix_fingerprint(
                    self._key(decl) for decl in snapshot.decls
                )
            except Exception:
                # Unfingerprintable snapshot (custom key_fn, odd decls):
                # disable the disk tier for this regime rather than risk
                # serving another regime's verdicts.
                self._prefix_fp = None
        if (
            self.speculate
            and self._spec_supported
            and isinstance(snapshot, PrefixSnapshot)
        ):
            try:
                self._spec_state = SpeculativeState(snapshot)
            except Exception:
                if self.strict:
                    raise
                # Arming the live state is an optimization; failing to
                # build it degrades every check to the copying path.
                self._spec_state = None
                self.trail_fallbacks += 1
                self.metrics.incr("oracle.trail.fallbacks")
        self.metrics.incr("oracle.prefix.armed")
        return True

    def _drop_snapshot(self) -> None:
        if self._snapshot is not None:
            self._snapshot = None
            self._prefix_gen += 1
        self._spec_state = None
        self._prefix_fp = NO_PREFIX_FP

    # ------------------------------------------------------------------
    # Declaration outcome table (dependency-pruned re-checking)
    # ------------------------------------------------------------------

    @property
    def decl_table_armed(self) -> bool:
        return self._decl_table is not None or self._decl_pending is not None

    def arm_decl_table(self, program) -> bool:
        """Arm the per-declaration outcome table for a baseline program.

        Called by the searcher *before* its initial check.  Arming is
        lazy: the recording pass runs on the first check that reaches the
        full (non-snapshot) path — which for the searcher is that initial
        check itself, so recording costs nothing beyond the check the
        search was going to pay anyway.  Once recorded, every full-path
        check replays unaffected declarations from the table and really
        re-infers only the changed ones and their dependents.  No-op
        (False) when dependency pruning or incremental reuse is off, or
        the substrate has no record/replay functions.
        """
        self._decl_table = None
        self._decl_pending = None
        if (
            not self.depprune
            or not self.incremental
            or self._decl_record_fn is None
            or self._decl_replay_fn is None
        ):
            return False
        self._decl_pending = program
        return True

    def ensure_decl_table(self) -> bool:
        """Run the pending recording pass *now* instead of lazily.

        Pool workers call this while seeding: their per-candidate counter
        deltas become pure replay/check counts, so a ``jobs=N`` run's
        per-verdict declaration accounting matches ``jobs=1`` exactly (the
        parent pays its recording cost on the search's initial check, which
        happens parent-side in both modes).
        """
        if self._decl_pending is not None:
            self._decl_tier(self._decl_pending)
        return self._decl_table is not None

    def _drop_decl_table(self) -> None:
        self._decl_table = None
        self._decl_pending = None

    def _decl_key_fn(self):
        # The table interns declaration keys into the same keyer the cache
        # uses; with a custom key_fn the substrate default applies.
        return self._keyer

    def _decl_tier(self, program) -> Optional[CheckResult]:
        """Serve a full-path check from the declaration outcome table.

        Returns ``None`` when the tier cannot answer (not armed, recording
        produced no table) — the caller falls through to a plain full
        check.  Any exception inside the tier degrades the same way: the
        table is dropped, ``oracle.decl.fallbacks`` counts the incident,
        and the plain check supplies the (always correct) answer.
        """
        if self._decl_table is None and self._decl_pending is None:
            return None
        try:
            extra_checked = 0
            if self._decl_table is None:
                baseline = self._decl_pending
                self._decl_pending = None
                table, base_result = self._decl_record_fn(
                    baseline, key_fn=self._decl_key_fn()
                )
                if table is None:
                    # Recording failed soundly (e.g. recursion blowup):
                    # the pass is still a complete check of the baseline.
                    return base_result if baseline is program else None
                self._decl_table = table
                self.metrics.incr("oracle.decl.armed")
                if baseline is program:
                    return base_result
                # The recording pass inferred the baseline's declarations
                # on behalf of this check; attribute that cost here.
                extra_checked = base_result.decls_checked
            if self._trail is not None and self._decl_table.free_vars:
                # Speculative replay: skip the per-pass weak-scheme
                # substitution and undo any links the check applies.  Any
                # failure inside degrades through the outer handler (the
                # table may be stale either way); the trail fallback is
                # counted so the degradation is visible.
                try:
                    result = self._spec_replay(program)
                except Exception:
                    if self.strict:
                        raise
                    self.trail_fallbacks += 1
                    self.metrics.incr("oracle.trail.fallbacks")
                    raise
            else:
                result = self._decl_replay_fn(
                    program, self._decl_table, key_fn=self._decl_key_fn()
                )
            if extra_checked:
                result.decls_checked += extra_checked
            return result
        except Exception:
            if self.strict:
                raise
            self._drop_decl_table()
            self.metrics.incr("oracle.decl.fallbacks")
            return None

    def _spec_replay(self, program) -> CheckResult:
        """Replay the decl table against its *live* weak schemes.

        The copying replay path pays one ``_substitute`` walk per recorded
        scheme per check to keep the table's weak type variables pristine
        (the ``instantiate_values`` discipline).  With a trail armed we can
        skip the copy entirely: the check unifies against the recorded
        variables in place, and ``undo`` restores their links and levels
        before the next check observes them.  Sound for the same reason
        the snapshot tier's speculation is — within one pass, a fresh copy
        and a live-then-undone original are observationally identical, and
        :func:`~repro.core.depgraph.plan_replay`'s value-restriction
        clique escalation already forces a real re-check of every
        declaration entangled with a weak scheme whenever one could be
        constrained differently.

        Errors that outlive the rollback (store persistence,
        cross-checking) are frozen *before* undo un-unifies the types they
        reference.  Any integrity violation raises — the caller counts the
        trail fallback and lets :meth:`_decl_tier`'s outer handler drop
        the (possibly corrupt) table and degrade to a plain full check.
        """
        trail = self._trail
        mark = trail.mark()
        previous = set_trail(trail)
        try:
            result = self._decl_replay_fn(
                program,
                self._decl_table,
                key_fn=self._decl_key_fn(),
                weak_copy=False,
            )
            if result.error is not None and (self._store_active or self.cross_check):
                result.error.freeze()
        except BaseException as unexpected:
            set_trail(previous)
            try:
                trail.undo(mark)
            except BaseException as undo_err:
                raise TrailIntegrityError(
                    "speculative replay rollback failed; armed table corrupt"
                ) from undo_err
            raise unexpected
        set_trail(previous)
        if trail.mark() < mark:
            raise TrailIntegrityError(
                "trail shrank below the pre-replay mark; armed table corrupt"
            )
        undone = trail.undo(mark)
        self.trail_speculated += 1
        self.trail_rolled_back += undone
        self.metrics.incr("oracle.trail.speculated")
        if undone:
            self.metrics.incr("oracle.trail.rolled_back", undone)
        return result

    def _account_decls(self, result) -> None:
        """Fold one check's per-declaration accounting into the counters."""
        checked = getattr(result, "decls_checked", 0)
        replayed = getattr(result, "decls_replayed", 0)
        skipped = getattr(result, "decls_skipped", 0)
        degraded = getattr(result, "decls_degraded", 0)
        if checked:
            self.decls_checked += checked
            self.metrics.incr("oracle.decl.checked", checked)
        if replayed:
            self.decls_replayed += replayed
            self.metrics.incr("oracle.decl.replayed", replayed)
        if skipped:
            self.decls_skipped += skipped
            self.metrics.incr("oracle.decl.skipped", skipped)
        if degraded:
            self.decls_degraded += degraded
            self.metrics.incr("oracle.decl.degraded", degraded)

    def _check_once(self, program) -> CheckResult:
        """One logical typecheck, via the armed prefix when possible."""
        snapshot = self._snapshot
        if snapshot is not None:
            if snapshot.matches(program):
                spec = self._spec_state
                if spec is not None and spec.snapshot is snapshot:
                    # Third tier: check the suffix against the live armed
                    # state and roll the trail back.  Errors that outlive
                    # the rollback (store persistence, cross-checking) are
                    # rendered *before* undo un-unifies the types they
                    # reference.
                    rolled_before = spec.rolled_back
                    try:
                        result = spec.check(
                            program,
                            freeze_errors=self._store_active or self.cross_check,
                        )
                    except Exception:
                        if self.strict:
                            raise
                        # Trail-integrity violation or an unexpected crash
                        # on the speculative path: discard the live state
                        # and degrade to the copying path — which answers
                        # (or crashes into the prefix self-healing) exactly
                        # as it would with speculation off.
                        self._spec_state = None
                        self.trail_fallbacks += 1
                        self.metrics.incr("oracle.trail.fallbacks")
                    else:
                        rolled = spec.rolled_back - rolled_before
                        self.trail_speculated += 1
                        self.trail_rolled_back += rolled
                        self.metrics.incr("oracle.trail.speculated")
                        if rolled:
                            self.metrics.incr("oracle.trail.rolled_back", rolled)
                        self.prefix_reused += 1
                        self.metrics.incr("oracle.prefix.reused")
                        if self.cross_check:
                            self._assert_equivalent(program, result)
                        return result
                try:
                    result = self._typecheck(program, prefix=snapshot)
                except Exception as err:
                    if self.strict:
                        raise
                    # Self-healing: a crash on the incremental fast path
                    # (poisoned snapshot, latent prefix-reuse bug) disarms
                    # reuse and falls through to a from-scratch check.
                    self._drop_snapshot()
                    self.prefix_fallbacks += 1
                    self.metrics.incr("oracle.prefix.fallbacks")
                    self._record_crash(err)
                else:
                    self.prefix_reused += 1
                    self.metrics.incr("oracle.prefix.reused")
                    if self.cross_check:
                        self._assert_equivalent(program, result)
                    return result
            else:
                # The candidate edited a declaration at or before the
                # snapshot point: the cached environment no longer applies.
                # Drop it — the searcher's candidates would keep missing
                # anyway.
                self._drop_snapshot()
                self.prefix_invalidated += 1
                self.metrics.incr("oracle.prefix.invalidated")
        served = self._decl_tier(program)
        if served is not None:
            # Table-served answers are full checks for every existing
            # counter (calls, full_checks, store kinds): the pruning shows
            # up only in the oracle.decl.* family, so suggestions, ranks,
            # and --stats stay byte-identical with pruning on or off.
            self.full_checks += 1
            self.metrics.incr("oracle.full_checks")
            if self.cross_check:
                self._assert_equivalent(
                    program, served, metric="oracle.decl.crosschecked"
                )
            return served
        self.full_checks += 1
        self.metrics.incr("oracle.full_checks")
        return self._typecheck(program)

    def _assert_equivalent(
        self, program, incremental: CheckResult,
        metric: str = "oracle.prefix.crosschecked",
    ) -> None:
        """Cross-check an incremental answer against a from-scratch run."""
        self.metrics.incr(metric)
        full = self._typecheck(program)
        if incremental.ok != full.ok or (
            not full.ok and _error_text(incremental) != _error_text(full)
        ):
            raise IncrementalMismatch(
                "incremental oracle diverged from from-scratch answer:\n"
                f"  incremental: ok={incremental.ok} error={_error_text(incremental)!r}\n"
                f"  from-scratch: ok={full.ok} error={_error_text(full)!r}"
            )

    # ------------------------------------------------------------------
    # The oracle interface
    # ------------------------------------------------------------------

    def check(self, program) -> CheckResult:
        """Run the type-checker, honouring budget, cache, and crash guard.

        Accounting order matters: the depth pre-check comes first (a
        too-deep candidate is rejected for free, before keying or checking
        could recurse into it); a cache hit is then free and served even
        when the budget is spent; the budget gate comes next, so a call
        that raises :class:`BudgetExceeded` was never a cache miss
        (nothing was checked) and counts toward neither ``calls`` nor
        ``cache_misses``.  Finally, unless ``strict``, any unexpected
        exception from the checker is isolated: the candidate is rejected
        (``ok=False``) and the crash is counted instead of propagated.
        Only :class:`BudgetExceeded` and the ``cross_check`` assertion
        :class:`IncrementalMismatch` ever escape.
        """
        try:
            return self._check(program)
        except (BudgetExceeded, IncrementalMismatch):
            raise
        except Exception as err:
            # Bookkeeping crashes (e.g. structural keying of a deep tree
            # with the depth pre-check disabled) — still candidate-reject.
            if self.strict:
                raise
            self._record_crash(err)
            return CheckResult(ok=False)

    def _check(self, program) -> CheckResult:
        if self._depth_probe is not None and self._depth_probe.exceeds(
            program, self.max_depth
        ):
            self.depth_rejections += 1
            self.metrics.incr("oracle.depth_rejected")
            return CheckResult(ok=False)
        skey = None
        if self._cache is not None:
            skey = self._key(program)
            hit = self._cache.get((self._prefix_gen, skey))
            if hit is not None:
                self.cache_hits += 1
                self.metrics.incr("oracle.cache.hits")
                return hit
        if self.max_calls is not None and self.calls >= self.max_calls:
            self.metrics.incr("oracle.budget_exceeded")
            raise BudgetExceeded(self.max_calls)
        if self._cache is not None:
            self.cache_misses += 1
            self.metrics.incr("oracle.cache.misses")
        self.calls += 1
        store_fp = None
        if self._store_active:
            # Disk tier: probed after the memo and *after* the budget
            # gate and call counting — a store hit spends budget exactly
            # like a real check, so the budget-exhaustion point (and the
            # whole downstream search) is identical warm or cold.
            if skey is None:
                skey = self._key(program)
            store_fp = self._prefix_fp
            try:
                stored = self.store.get(store_fp, skey)
            except Exception:
                # A broken probe degrades to a miss — it must never leak
                # into the outer crash guard and reject the candidate.
                if self.strict:
                    raise
                stored = None
            if stored is not None:
                self.store_hits += 1
                self.metrics.incr("oracle.store.hits")
                self._replay_stored_kind(stored.kind)
                result = self._stored_result(stored)
                if self._cache is not None:
                    self._cache[(self._prefix_gen, skey)] = result
                return result
            self.store_misses += 1
            self.metrics.incr("oracle.store.misses")
        before = (
            self.crashes,
            self.prefix_fallbacks,
            self.prefix_reused,
            self.prefix_invalidated,
        )
        try:
            result = self._check_once(program)
        except IncrementalMismatch:
            raise
        except Exception as err:
            if self.strict:
                raise
            self._record_crash(err)
            result = CheckResult(ok=False)
        self._account_decls(result)
        self.metrics.incr("oracle.calls")
        self.metrics.incr("oracle.calls.ok" if result.ok else "oracle.calls.fail")
        if store_fp is not None:
            self._store_write(store_fp, skey, result, before)
        if self._cache is not None:
            # Re-tag with the *current* generation: if the check itself
            # invalidated or healed away the snapshot, the result was
            # computed from scratch and belongs to the new regime.
            self._cache[(self._prefix_gen, skey)] = result
        return result

    def passes(self, program) -> bool:
        """The boolean question the searcher actually asks."""
        return self.check(program).ok

    def account_verdict(self, program, verdict) -> bool:
        """Account a verdict computed *elsewhere* (a pool worker) as if
        :meth:`check` had computed it here, and return the verdict to use.

        The parallel layer pre-checks candidates in worker processes but
        the searcher still applies verdicts strictly in enumeration order;
        this method replays :meth:`_check`'s exact accounting pipeline for
        one applied verdict — depth pre-check (free rejection), cache hit
        (free, and the *cached* verdict wins), budget gate (raises
        :class:`BudgetExceeded` at the same call index a serial run
        would), cache-miss/call counting, and cache store — without
        re-running the checker.  This is what makes parallel call counts,
        budget exhaustion points, and cached-mode behaviour byte-identical
        to serial.

        ``verdict`` is either a plain bool (back-compat: accounted as a
        reused check while a snapshot is armed, a full check otherwise) or
        a record with ``ok``/``kind``/``sample`` attributes (the pool's
        ``WorkerVerdict``), where ``kind`` is the ``VERDICT_*`` constant
        the worker observed when it computed the verdict.  Replaying the
        kind here — instead of bulk-merging worker counters — is what
        makes the ``oracle.*`` counters of a ``jobs=N`` run identical to
        a serial run's: every increment happens per *applied* verdict, so
        candidates a worker checked but the search never applied (e.g.
        past the budget-exhaustion point) leave no trace, exactly as if
        they were never checked.
        """
        if verdict is True or verdict is False:
            ok = verdict
            kind = VERDICT_REUSED if self._snapshot is not None else VERDICT_FULL
            sample = None
            vstore = None
        else:
            ok, kind, sample = verdict.ok, verdict.kind, verdict.sample
            vstore = getattr(verdict, "store", None)
        if self._depth_probe is not None and self._depth_probe.exceeds(
            program, self.max_depth
        ):
            self.depth_rejections += 1
            self.metrics.incr("oracle.depth_rejected")
            return False
        if kind == VERDICT_CRASH_UNCOUNTED:
            # Serial analogue: a bookkeeping crash in :meth:`check`'s outer
            # guard — crashes counted, but never a call (or a cache miss).
            self._record_crash_sample(sample)
            return False
        key = None
        if self._cache is not None:
            key = (self._prefix_gen, self._key(program))
            hit = self._cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                self.metrics.incr("oracle.cache.hits")
                return hit.ok
        if self.max_calls is not None and self.calls >= self.max_calls:
            self.metrics.incr("oracle.budget_exceeded")
            raise BudgetExceeded(self.max_calls)
        if self._cache is not None:
            self.cache_misses += 1
            self.metrics.incr("oracle.cache.misses")
        self.calls += 1
        store_fp = self._prefix_fp if (self._store_active and vstore) else None
        if store_fp is not None and vstore == "hit":
            # The worker probed the store read-only and hit; replay it
            # exactly as a serial store hit — the stored kind's counters,
            # the store-hit metric, recency for compaction, and *no*
            # ``oracle.calls`` metric (no checker ran anywhere).
            self.store_hits += 1
            self.metrics.incr("oracle.store.hits")
            try:
                self.store.note_hit(store_fp, self._key(program))
            except Exception:
                if self.strict:
                    raise
            self._replay_stored_kind(kind)
            if self._cache is not None:
                self._cache[(self._prefix_gen, key[1])] = CheckResult(ok=ok)
            return ok
        if store_fp is not None:
            self.store_misses += 1
            self.metrics.incr("oracle.store.misses")
        # Replay the worker's trail telemetry for this applied verdict
        # (legacy bool verdicts and non-speculating workers ship zeros),
        # keeping oracle.trail.* byte-identical between jobs=1 and jobs=N.
        tsp = getattr(verdict, "trail_speculated", 0)
        trb = getattr(verdict, "trail_rolled_back", 0)
        tfb = getattr(verdict, "trail_fallbacks", 0)
        if tsp:
            self.trail_speculated += tsp
            self.metrics.incr("oracle.trail.speculated", tsp)
        if trb:
            self.trail_rolled_back += trb
            self.metrics.incr("oracle.trail.rolled_back", trb)
        if tfb:
            self.trail_fallbacks += tfb
            self.metrics.incr("oracle.trail.fallbacks", tfb)
        if kind == VERDICT_REUSED:
            self.prefix_reused += 1
            self.metrics.incr("oracle.prefix.reused")
        elif kind == VERDICT_FALLBACK:
            # Prefix crash healed into a from-scratch re-run; mirror the
            # serial self-healing, including disarming the snapshot.
            self._drop_snapshot()
            self.prefix_fallbacks += 1
            self.metrics.incr("oracle.prefix.fallbacks")
            self._record_crash_sample(sample)
            self.full_checks += 1
            self.metrics.incr("oracle.full_checks")
        elif kind == VERDICT_INVALIDATED:
            self._drop_snapshot()
            self.prefix_invalidated += 1
            self.metrics.incr("oracle.prefix.invalidated")
            self.full_checks += 1
            self.metrics.incr("oracle.full_checks")
        elif kind == VERDICT_CRASH:
            # The counted check crashed after entering the full path
            # (serial increments full_checks before the checker runs);
            # the candidate is rejected.
            self._record_crash_sample(sample)
            self.full_checks += 1
            self.metrics.incr("oracle.full_checks")
            ok = False
        else:  # VERDICT_FULL — and any unknown kind degrades to it
            self.full_checks += 1
            self.metrics.incr("oracle.full_checks")
        # Replay the worker's per-declaration accounting for this applied
        # verdict (legacy bool verdicts carry none), keeping the
        # oracle.decl.* family byte-identical between jobs=1 and jobs=N.
        self._account_decls(verdict)
        self.metrics.incr("oracle.calls")
        self.metrics.incr("oracle.calls.ok" if ok else "oracle.calls.fail")
        if store_fp is not None:
            # Parent-writes discipline: workers probe read-only, and only
            # verdicts the search actually *applies* reach this point —
            # so speculative worker checks never touch the disk.
            try:
                err = getattr(verdict, "err", None) if not ok else None
                err_kind = getattr(verdict, "err_kind", None) if not ok else None
                if self.store.put(store_fp, self._key(program), ok, kind, err, err_kind):
                    self.store_writes += 1
                    self.metrics.incr("oracle.store.writes")
            except Exception:
                if self.strict:
                    raise
            self._drain_store_io()
        if self._cache is not None:
            # Re-tag with the *current* generation, as _check does: the
            # fallback/invalidated kinds bumped it above, and the verdict
            # belongs to the new regime.
            self._cache[(self._prefix_gen, key[1])] = CheckResult(ok=ok)
        return ok

    def reset(self) -> None:
        """Clear accounting, cache, and the prefix snapshot between searches.

        The metrics registry is *not* cleared: it aggregates across
        searches by design (reset it explicitly if per-search numbers are
        wanted).
        """
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.full_checks = 0
        self.prefix_reused = 0
        self.prefix_invalidated = 0
        self.prefix_fallbacks = 0
        self.crashes = 0
        self.depth_rejections = 0
        self.decls_checked = 0
        self.decls_replayed = 0
        self.decls_skipped = 0
        self.decls_degraded = 0
        self.crash_samples = []
        self._snapshot = None
        self._spec_state = None
        self.trail_speculated = 0
        self.trail_rolled_back = 0
        self.trail_fallbacks = 0
        if self._trail is not None:
            self._trail.clear()
        self._decl_table = None
        self._decl_pending = None
        self._prefix_gen = 0
        self._prefix_fp = NO_PREFIX_FP
        self.store_hits = 0
        self.store_misses = 0
        self.store_writes = 0
        if self._cache is not None:
            self._cache = {}
        if self._keyer is not None:
            self._keyer.clear()
        if self._depth_probe is not None:
            self._depth_probe.clear()
