"""Declaration dependency graph and per-declaration outcome table.

This is the planning half of dependency-pruned re-checking (the second
oracle reuse tier behind prefix snapshots).  The language-specific halves —
def/use extraction and the actual record/replay inference passes — live in
:mod:`repro.miniml.deps` and :mod:`repro.miniml.infer`; everything here
operates on opaque ``(namespace, name)`` pairs and structural keys, so the
planner itself is checker-agnostic.

The contract: an armed baseline program has been fully inferred once, and
each declaration's outcome recorded in a :class:`DeclTable` entry —
structural key, def/use sets, the resulting schemes (opaque to this
module), and canonical fingerprints of both the schemes it produced and
the used-names slice of the environment it was checked in.  Given a
candidate near-copy, :func:`plan_replay` decides per declaration whether
the recorded outcome can be *replayed* or the declaration must be
*checked* (really re-inferred):

* a declaration whose structural key differs from the recorded one is
  changed — it must be checked, and the names it defines (in both its
  baseline and candidate form) become *dirty*;
* an unchanged declaration that uses a dirty name can observe the change —
  checked, and its defs become dirty too;
* an unchanged declaration that *re-defines* a dirty name without using it
  shadows the change — the name leaves the dirty set, cutting the
  dependency edge for everything after it;
* declarations entangled through the value restriction (recorded schemes
  sharing free type variables — e.g. ``let r = ref []`` observed through
  later uses) are handled as cliques: if any checked declaration touches a
  weak name, *every* declaration touching a weak name is checked, because
  replaying a weak scheme bakes in constraints the baseline's later
  declarations applied to it.

Replay-time fingerprint verification (in the checker's replay pass) is the
belt-and-braces backstop: a replayed declaration whose used-names
environment slice no longer matches the recording degrades to a real
check — never a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Name = Tuple[str, str]

#: Planner decisions, per candidate declaration index.
PLAN_REPLAY = "replay"
PLAN_CHECK = "check"


@dataclass
class DeclOutcome:
    """The recorded outcome of one baseline declaration.

    ``bindings``, ``error``, and the fingerprint payloads are opaque here;
    the checker that recorded them is the only consumer.
    """

    #: Structural key of the declaration node (shared-keyer interned).
    skey: Any
    uses: FrozenSet[Name] = field(default_factory=frozenset)
    defs: FrozenSet[Name] = field(default_factory=frozenset)
    #: Value bindings this declaration introduced (name -> scheme).
    bindings: Dict[str, Any] = field(default_factory=dict)
    #: Canonical fingerprint of each binding's resulting scheme.
    scheme_fp: Dict[str, str] = field(default_factory=dict)
    #: Canonical fingerprint of the used-names env slice (only names bound
    #: by earlier declarations of the same program — base-env names cannot
    #: change between baseline and candidate).
    env_fp: Dict[str, str] = field(default_factory=dict)
    #: Value names bound here whose recorded scheme kept free type
    #: variables (the value restriction's weak bindings).
    weak_names: FrozenSet[str] = field(default_factory=frozenset)
    #: The recorded checker error, when this declaration failed (the
    #: baseline pass stops here; no later entries exist).
    error: Optional[Any] = None


@dataclass
class DeclTable:
    """Per-declaration outcome table for one armed baseline program.

    ``free_vars`` collects the free type variables of all weak recorded
    schemes so a replay pass can copy them consistently (the
    ``instantiate_values`` discipline: one fresh mapping per pass, shared
    across entries, so entangled schemes stay entangled and the recorded
    table is never mutated by a candidate's unifications).
    """

    entries: List[DeclOutcome] = field(default_factory=list)
    free_vars: Tuple[Any, ...] = ()
    #: Chaos hook (see repro.faults): a stale table must fail every
    #: replay-time fingerprint verification, degrading to real checks.
    stale: bool = False
    #: Lazily cached :attr:`weak_value_names` — entries are frozen after
    #: recording, and the replay planner asks once per oracle call.
    _weak_cache: Optional[FrozenSet[str]] = None
    #: Lazily cached :attr:`self_consistent` (same freezing argument).
    _consistent_cache: Optional[bool] = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def weak_value_names(self) -> FrozenSet[str]:
        cached = self._weak_cache
        if cached is None:
            weak: Set[str] = set()
            for entry in self.entries:
                weak.update(entry.weak_names)
            cached = frozenset(weak)
            self._weak_cache = cached
        return cached

    @property
    def self_consistent(self) -> bool:
        """Whether every entry's recorded env slice matches the table.

        Replay-time fingerprint verification, applied to an *unchanged*
        program, compares each entry's ``env_fp`` against the
        ``scheme_fp`` of whichever earlier entry (in shadowing order) last
        defined the name — a computation over the table alone.  The
        pure-prefix replay fast path verifies it here once per table
        instead of once per check; a corrupted table fails and falls back
        to the slow loop, which degrades the affected suffix to real
        checks exactly as before.
        """
        cached = self._consistent_cache
        if cached is None:
            current: Dict[str, str] = {}
            cached = True
            for entry in self.entries:
                for name, fp in entry.env_fp.items():
                    if current.get(name) != fp:
                        cached = False
                        break
                if not cached:
                    break
                current.update(entry.scheme_fp)
            self._consistent_cache = cached
        return cached


class DeclDepGraph:
    """Forward reachability over declaration def/use summaries.

    Built from per-declaration ``(uses, defs)`` pairs; answers "which
    declarations at index > i can observe a change to the bindings
    introduced at i?" with the same shadowing-aware propagation
    :func:`plan_replay` uses.
    """

    def __init__(self, use_defs: Sequence[Tuple[FrozenSet[Name], FrozenSet[Name]]]):
        self._uses = [frozenset(u) for u, _ in use_defs]
        self._defs = [frozenset(d) for _, d in use_defs]

    def __len__(self) -> int:
        return len(self._uses)

    def uses(self, index: int) -> FrozenSet[Name]:
        return self._uses[index]

    def defs(self, index: int) -> FrozenSet[Name]:
        return self._defs[index]

    def dependents_of(self, index: int) -> List[int]:
        """Indices > ``index`` that can observe a change to its bindings."""
        dirty: Set[Name] = set(self._defs[index])
        out: List[int] = []
        for j in range(index + 1, len(self._uses)):
            if self._uses[j] & dirty:
                out.append(j)
                dirty |= self._defs[j]
            else:
                # Unaffected re-definition shadows the dirty binding.
                dirty -= self._defs[j]
        return out


def _forward_plan(
    n: int,
    seeds: Set[int],
    uses_of,
    defs_of,
    baseline_defs_of,
) -> Set[int]:
    """One pass of dirty-name propagation; returns the checked set."""
    dirty: Set[Name] = set()
    checked: Set[int] = set()
    for i in range(n):
        if i in seeds:
            checked.add(i)
            dirty |= defs_of(i) | baseline_defs_of(i)
        elif uses_of(i) & dirty:
            checked.add(i)
            dirty |= defs_of(i)
        else:
            dirty -= defs_of(i)
    return checked


def plan_replay(
    table: DeclTable,
    candidate_skeys: Sequence[Any],
    candidate_use_defs: Sequence[Tuple[FrozenSet[Name], FrozenSet[Name]]],
) -> List[str]:
    """Per-declaration replay/check plan for a candidate program.

    ``candidate_skeys[i]`` is the structural key of candidate declaration
    ``i`` (from the same shared keyer the table was recorded with);
    ``candidate_use_defs[i]`` its def/use summary.  The result has one
    :data:`PLAN_REPLAY` / :data:`PLAN_CHECK` decision per candidate
    declaration.
    """
    n = len(candidate_skeys)
    m = len(table.entries)
    changed: Set[int] = set()
    for i in range(n):
        if i >= m or candidate_skeys[i] != table.entries[i].skey:
            changed.add(i)

    def uses_of(i: int) -> FrozenSet[Name]:
        if i in changed or i >= m:
            return candidate_use_defs[i][0]
        return table.entries[i].uses

    def defs_of(i: int) -> FrozenSet[Name]:
        if i in changed or i >= m:
            return candidate_use_defs[i][1]
        return table.entries[i].defs

    def baseline_defs_of(i: int) -> FrozenSet[Name]:
        # A changed declaration dirties what it *used to* define too: a
        # candidate that renames `let f` to `let g` must invalidate
        # baseline users of `f` (their recorded check resolved `f` here).
        if i in changed and i < m:
            return table.entries[i].defs
        return frozenset()

    weak = table.weak_value_names
    weak_names: FrozenSet[Name] = frozenset(("value", name) for name in weak)

    def touches_weak(i: int) -> bool:
        return bool((uses_of(i) | defs_of(i) | baseline_defs_of(i)) & weak_names)

    seeds = set(changed)
    while True:
        checked = _forward_plan(n, seeds, uses_of, defs_of, baseline_defs_of)
        if weak_names and any(touches_weak(i) for i in checked):
            # Value-restriction clique: a checked declaration can link the
            # weak schemes' free type variables differently than the
            # baseline did, so every declaration touching a weak name must
            # be re-inferred together (fresh, unconstrained variables).
            escalated = seeds | {i for i in range(n) if touches_weak(i)}
            if escalated != seeds:
                seeds = escalated
                continue
        break
    return [PLAN_CHECK if i in checked else PLAN_REPLAY for i in range(n)]
