"""The top-level SEMINAL driver: one call from ill-typed source to messages.

This is the public API a compiler front end would call between parsing and
type-checking (paper Figure 1): files that type-check bypass it entirely;
for the rest it returns the conventional checker message *and* the ranked
search-based suggestions, so callers (like the empirical study in
:mod:`repro.evaluation`) can compare the two.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.miniml.ast_nodes import Program
from repro.miniml.errors import MiniMLTypeError
from repro.miniml.parser import parse_program
from repro.obs import (
    NULL_EVENTS,
    NULL_METRICS,
    NULL_TRACER,
    degradation_as_dict,
    suggestion_rows,
)

from .changes import Suggestion
from .enumerator import MiniMLEnumerator
from .messages import render_report, render_suggestion
from .oracle import Oracle
from .ranker import rank
from .resilience import DegradationReport
from .searcher import SearchConfig, Searcher, SearchStats


@dataclass
class ExplainResult:
    """Outcome of :func:`explain` on one program."""

    ok: bool
    program: Program
    #: The conventional type-checker's error (None when ``ok``).
    checker_error: Optional[MiniMLTypeError] = None
    #: Ranked suggestions, best first (empty when ``ok`` or nothing found).
    suggestions: List[Suggestion] = field(default_factory=list)
    #: Index of the first failing top-level declaration.
    bad_decl_index: Optional[int] = None
    #: Total type-checker invocations the search performed.
    oracle_calls: int = 0
    #: True if the search stopped early on its oracle budget.
    budget_exhausted: bool = False
    #: Per-phase oracle-call breakdown and per-rule success counts.
    stats: Optional[SearchStats] = None
    #: The metrics registry the search counted into (None unless the caller
    #: passed one to :func:`explain` — see ``repro.obs``).
    metrics: Optional[object] = None
    #: What (if anything) the search gave up — budget, deadline, isolated
    #: oracle crashes, prefix fallbacks (see :mod:`repro.core.resilience`).
    degradation: Optional[DegradationReport] = None

    @property
    def degraded(self) -> bool:
        """True when the suggestions are best-effort rather than complete."""
        return self.degradation is not None and self.degradation.degraded

    @property
    def best(self) -> Optional[Suggestion]:
        """The top-ranked suggestion (the message we lead with)."""
        return self.suggestions[0] if self.suggestions else None

    @property
    def checker_message(self) -> Optional[str]:
        return self.checker_error.render() if self.checker_error else None

    def render(self, limit: int = 3) -> str:
        """Human-readable report (ranked suggestions or the checker error)."""
        if self.ok:
            return "The program type-checks."
        return render_report(self.suggestions, self.checker_message, limit=limit)

    def render_best(self) -> str:
        """Just the single best message."""
        if self.ok:
            return "The program type-checks."
        if self.best is None:
            return self.checker_message or "Ill-typed, and no suggestion found."
        return render_suggestion(self.best)


def explain(
    source: Union[str, Program],
    *,
    enable_triage: bool = True,
    enable_adaptation: bool = True,
    incremental: bool = True,
    depprune: bool = True,
    speculate: bool = True,
    max_oracle_calls: Optional[int] = 20000,
    deadline_seconds: Optional[float] = None,
    triage_threshold: int = 5,
    disabled_rules: Sequence[str] = (),
    oracle: Optional[Oracle] = None,
    triage_strategy: str = "greedy",
    eager_enumeration: bool = False,
    custom_rules: Sequence = (),
    tracer=None,
    metrics=None,
    events=None,
    label: str = "",
    jobs: Union[int, str, None] = 1,
    dedup: bool = True,
    store=None,
    shed_fraction: float = 0.85,
    supervision=None,
    candidate_timeout_seconds: Optional[float] = None,
    worker_rss_limit_mb: Optional[float] = None,
    worker_fault_plan=None,
) -> ExplainResult:
    """Search for type-error messages for ``source``.

    Parameters mirror the knobs the paper evaluates: ``enable_triage=False``
    reproduces the "without triage" configuration of Section 3, and
    ``disabled_rules`` supports the Figure 7 constructive-change ablation.
    ``incremental=False`` disables the prefix-reuse oracle (every candidate
    is re-inferred from the empty environment — the pre-optimization
    behaviour, kept as an escape hatch and for benchmarking the win).
    ``depprune=False`` disables the declaration outcome table (the second
    reuse tier: full-path checks replay recorded schemes for declarations a
    change cannot affect) — answers are identical either way; only the
    ``oracle.decl.*`` telemetry and wall time differ.
    ``speculate=False`` disables trail-based speculative inference (the
    third reuse tier: candidates checked against the live armed state with
    undo-trail rollback instead of per-check environment copies) — again
    answer-preserving; only ``oracle.trail.*`` telemetry and wall time
    differ.

    The call is best-effort by contract (see :mod:`repro.core.resilience`):
    running out of the oracle budget or the optional wall-clock
    ``deadline_seconds``, and any oracle crash on a pathological candidate,
    never raises — the result carries whatever suggestions were found plus
    a :class:`~repro.core.resilience.DegradationReport` in ``degradation``
    saying exactly what was given up.  Parse errors of ``source`` still
    raise (they are input errors, not search failures).

    ``jobs`` fans candidate checks across worker processes (``"auto"`` =
    one per CPU; see :mod:`repro.core.parallel`).  The default ``1`` is
    the exact serial code path; any value produces byte-identical
    suggestions and ranks, so parallelism is purely a wall-clock knob.
    ``dedup=False`` disables the per-search duplicate-candidate memo (an
    ablation/debugging escape hatch — the memo never changes answers).

    Robustness knobs (see :mod:`repro.core.resilience`):
    ``shed_fraction`` sets the point inside ``deadline_seconds`` at which
    optional phases start shedding (default 0.85 — the historical
    behaviour); ``supervision`` is a
    :class:`~repro.core.resilience.RestartPolicy` governing worker
    respawn backoff, the circuit breaker, and poison-candidate
    quarantine; ``candidate_timeout_seconds``/``worker_rss_limit_mb``
    arm the per-candidate wall-clock and per-worker RSS watchdogs that
    convert runaway checks into clean ``crash`` verdicts.
    ``worker_fault_plan`` injects a :class:`~repro.faults.FaultPlan`
    into pooled workers (chaos testing only).

    ``tracer``/``metrics``/``events`` (see :mod:`repro.obs`) switch on
    telemetry: a :class:`~repro.obs.Tracer` records a Perfetto-loadable
    span tree of the whole search, a :class:`~repro.obs.MetricsRegistry`
    accumulates the counters (oracle calls by outcome, per-rule change
    accounting, triage rounds, suggestions ranked), and an
    :class:`~repro.obs.EventLog` receives the lifecycle record
    (``search_started``/``search_finished``, oracle crashes, shed phases,
    the ranked ``suggestions``, a ``degradation`` event when the search
    gave anything up).  All default to shared null objects with no
    measurable overhead.  ``label`` names the run in event lines.

    ``store`` enables the persistent cross-run verdict cache (see
    :mod:`repro.store`): a directory path (opened here and closed on the
    way out) or an already-open
    :class:`~repro.store.VerdictStore` (flushed, but left open for the
    caller).  Warm runs skip re-checking candidates seen by any earlier
    run while keeping suggestions, ranks, and ``--stats`` byte-identical
    to a cold or store-less run; a ``store`` event with hit/miss/write
    counts is emitted to the event log.

    >>> result = explain('let x = 1 + true')
    >>> result.ok
    False
    >>> result.best is not None
    True
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    registry = metrics if metrics is not None else NULL_METRICS
    events = events if events is not None else NULL_EVENTS
    start = time.perf_counter()
    if isinstance(source, str):
        with tracer.span("parse", chars=len(source)):
            program = parse_program(source)
    else:
        program = source
    events.emit(
        "search_started", label=label, decls=len(program.decls), jobs=jobs
    )
    store_obj = None
    owns_store = False
    if store is not None:
        from repro.store import VerdictStore

        if isinstance(store, VerdictStore):
            store_obj = store
        else:
            store_obj = VerdictStore(store)
            owns_store = True
        if oracle is None:
            oracle = Oracle(
                max_calls=max_oracle_calls,
                metrics=registry,
                incremental=incremental,
                depprune=depprune,
                speculate=speculate,
                store=store_obj,
            )
        else:
            oracle.attach_store(store_obj)
    config = SearchConfig(
        max_oracle_calls=max_oracle_calls,
        deadline_seconds=deadline_seconds,
        enable_triage=enable_triage,
        enable_adaptation=enable_adaptation,
        incremental=incremental,
        depprune=depprune,
        speculate=speculate,
        triage_threshold=triage_threshold,
        disabled_rules=disabled_rules,
        triage_strategy=triage_strategy,
        eager_enumeration=eager_enumeration,
        custom_rules=custom_rules,
        jobs=jobs,
        dedup=dedup,
        shed_fraction=shed_fraction,
        supervision=supervision,
        candidate_timeout_seconds=candidate_timeout_seconds,
        worker_rss_limit_mb=worker_rss_limit_mb,
        worker_fault_plan=worker_fault_plan,
    )
    searcher = Searcher(
        oracle=oracle,
        config=config,
        tracer=tracer,
        metrics=registry,
        events=events,
    )
    outcome = searcher.search_program(program)
    with tracer.span("rank", candidates=len(outcome.suggestions)):
        ranked = rank(outcome.suggestions)
    registry.incr("rank.suggestions_ranked", len(ranked))
    if store_obj is not None:
        try:
            if owns_store:
                store_obj.close()
            else:
                store_obj.flush()
        except Exception:
            pass  # persisting the cache is best-effort; answers stand
        if events.enabled:
            events.emit(
                "store",
                label=label,
                path=str(store_obj.path),
                hits=searcher.oracle.store_hits,
                misses=searcher.oracle.store_misses,
                writes=searcher.oracle.store_writes,
            )
    if events.enabled:
        if ranked:
            events.emit("suggestions", label=label, ranks=suggestion_rows(ranked))
        if outcome.degradation is not None and outcome.degradation.degraded:
            events.emit(
                "degradation", **degradation_as_dict(outcome.degradation)
            )
        events.emit(
            "search_finished",
            label=label,
            ok=outcome.ok,
            suggestions=len(ranked),
            oracle_calls=outcome.oracle_calls,
            degraded=bool(
                outcome.degradation is not None and outcome.degradation.degraded
            ),
            elapsed_seconds=round(time.perf_counter() - start, 6),
        )
    return ExplainResult(
        ok=outcome.ok,
        program=program,
        checker_error=outcome.checker_error,
        suggestions=ranked,
        bad_decl_index=outcome.bad_decl_index,
        oracle_calls=outcome.oracle_calls,
        budget_exhausted=outcome.budget_exhausted,
        stats=outcome.stats,
        metrics=metrics,
        degradation=outcome.degradation,
    )


# ---------------------------------------------------------------------------
# Batch mode: many programs per invocation
# ---------------------------------------------------------------------------


@dataclass
class BatchEntry:
    """Outcome of one program in an :func:`explain_many` batch.

    The rendered ``report``/``best`` strings are produced where the search
    ran (possibly a worker process), so the human-readable summary is
    always available even if the full :class:`ExplainResult` could not be
    shipped back (then ``result`` is None).  ``error`` is set for *input*
    failures — a parse error or an unreadable source — which are recorded
    per entry, never raised: one bad file must not sink the batch.
    """

    label: str
    ok: bool = False
    #: Input-error text (parse failure etc.); None when the search ran.
    error: Optional[str] = None
    #: The full rendered report (checker message + ranked suggestions).
    report: str = ""
    #: Just the single best message.
    best: str = ""
    suggestions: int = 0
    oracle_calls: int = 0
    degraded: bool = False
    elapsed_seconds: float = 0.0
    #: PID of the process that ran the search (the parent's for serial).
    worker_pid: int = 0
    #: The per-entry metrics snapshot (``MetricsRegistry.snapshot()``) when
    #: the batch was run with ``collect_metrics=True`` — plain picklable
    #: data, so it crosses process boundaries even when ``result`` cannot.
    metrics: Optional[Dict] = None
    #: The full result when available (always for serial batches).
    result: Optional[ExplainResult] = None


def _explain_entry(
    label: str, source: str, top: int, kwargs: Dict
) -> BatchEntry:
    """Run one :func:`explain` call and package it as a :class:`BatchEntry`
    (exceptions become error entries — this must never raise).

    ``collect_metrics=True`` in ``kwargs`` (consumed here, not forwarded)
    runs the search under a fresh :class:`~repro.obs.MetricsRegistry` and
    ships its snapshot in :attr:`BatchEntry.metrics` — the route batch
    telemetry takes home from worker processes, since a live registry
    cannot cross the boundary.
    """
    start = time.perf_counter()
    entry = BatchEntry(label=label, worker_pid=os.getpid())
    registry = None
    if kwargs.pop("collect_metrics", False) and kwargs.get("metrics") is None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        kwargs["metrics"] = registry
    kwargs.setdefault("label", label)
    try:
        result = explain(source, **kwargs)
    except Exception as err:
        entry.error = str(err) or type(err).__name__
        entry.report = f"error: {entry.error}"
    else:
        entry.ok = result.ok
        entry.report = result.render(limit=top)
        entry.best = result.render_best()
        entry.suggestions = len(result.suggestions)
        entry.oracle_calls = result.oracle_calls
        entry.degraded = result.degraded
        entry.result = result
    if registry is not None:
        entry.metrics = registry.snapshot()
    entry.elapsed_seconds = time.perf_counter() - start
    return entry


def explain_many(
    sources: Iterable[str],
    labels: Optional[Sequence[str]] = None,
    *,
    jobs: Union[int, str, None] = 1,
    top: int = 3,
    **kwargs,
) -> List[BatchEntry]:
    """Explain many programs in one call — the batch mode behind
    ``python -m repro explain --jobs N FILE...``.

    Entries come back in input order, one per source, regardless of which
    worker finished when.  ``jobs`` parallelizes *across programs* (each
    worker runs a whole serial ``explain`` per task — no nested pools);
    per-candidate parallelism within a single program is ``explain``'s own
    ``jobs`` parameter instead.  Remaining keyword arguments are forwarded
    to :func:`explain` verbatim; with ``jobs > 1`` they must be picklable
    (in particular ``oracle``/``tracer``/``metrics``/``events`` objects
    cannot cross process boundaries — leave them unset for parallel
    batches).  ``collect_metrics=True`` instead runs each entry under a
    fresh registry *where the search runs* and ships the snapshot back in
    :attr:`BatchEntry.metrics` for the caller to merge
    (``MetricsRegistry.merge_snapshot``).

    Fault tolerance matches the candidate pool: a worker-process failure
    degrades, never raises — affected programs are transparently re-run
    serially in the parent.
    """
    source_list = list(sources)
    if labels is None:
        label_list = [f"program[{i}]" for i in range(len(source_list))]
    else:
        label_list = [str(label) for label in labels]
        if len(label_list) != len(source_list):
            raise ValueError(
                f"got {len(source_list)} sources but {len(label_list)} labels"
            )
    from .parallel import _fork_context, explain_batch_worker, resolve_jobs

    n_jobs = min(resolve_jobs(jobs), max(1, len(source_list)))
    if n_jobs <= 1:
        return [
            _explain_entry(label, source, top, dict(kwargs))
            for label, source in zip(label_list, source_list)
        ]

    import pickle
    from concurrent.futures import ProcessPoolExecutor

    from .parallel import terminate_executor

    kwargs_blob = pickle.dumps(dict(kwargs))
    entries: List[Optional[BatchEntry]] = [None] * len(source_list)
    pool = ProcessPoolExecutor(max_workers=n_jobs, mp_context=_fork_context())
    try:
        futures = [
            pool.submit(explain_batch_worker, label, source, top, kwargs_blob)
            for label, source in zip(label_list, source_list)
        ]
        for i, future in enumerate(futures):
            try:
                entries[i] = pickle.loads(future.result())
            except Exception:
                entries[i] = None  # worker died: parent re-runs below
    except Exception:
        pass  # a broken executor degrades every pending entry to serial
    except BaseException:
        # KeyboardInterrupt (or another teardown signal) mid-batch: kill
        # the workers *now* — shutdown(wait=True) would block on checks
        # already in flight — then let the interrupt propagate.
        terminate_executor(pool)
        raise
    pool.shutdown(wait=True)
    for i, entry in enumerate(entries):
        if entry is None:
            entries[i] = _explain_entry(
                label_list[i], source_list[i], top, dict(kwargs)
            )
    return entries
