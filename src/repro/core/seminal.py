"""The top-level SEMINAL driver: one call from ill-typed source to messages.

This is the public API a compiler front end would call between parsing and
type-checking (paper Figure 1): files that type-check bypass it entirely;
for the rest it returns the conventional checker message *and* the ranked
search-based suggestions, so callers (like the empirical study in
:mod:`repro.evaluation`) can compare the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.miniml.ast_nodes import Program
from repro.miniml.errors import MiniMLTypeError
from repro.miniml.parser import parse_program
from repro.obs import NULL_METRICS, NULL_TRACER

from .changes import Suggestion
from .enumerator import MiniMLEnumerator
from .messages import render_report, render_suggestion
from .oracle import Oracle
from .ranker import rank
from .resilience import DegradationReport
from .searcher import SearchConfig, Searcher, SearchStats


@dataclass
class ExplainResult:
    """Outcome of :func:`explain` on one program."""

    ok: bool
    program: Program
    #: The conventional type-checker's error (None when ``ok``).
    checker_error: Optional[MiniMLTypeError] = None
    #: Ranked suggestions, best first (empty when ``ok`` or nothing found).
    suggestions: List[Suggestion] = field(default_factory=list)
    #: Index of the first failing top-level declaration.
    bad_decl_index: Optional[int] = None
    #: Total type-checker invocations the search performed.
    oracle_calls: int = 0
    #: True if the search stopped early on its oracle budget.
    budget_exhausted: bool = False
    #: Per-phase oracle-call breakdown and per-rule success counts.
    stats: Optional[SearchStats] = None
    #: The metrics registry the search counted into (None unless the caller
    #: passed one to :func:`explain` — see ``repro.obs``).
    metrics: Optional[object] = None
    #: What (if anything) the search gave up — budget, deadline, isolated
    #: oracle crashes, prefix fallbacks (see :mod:`repro.core.resilience`).
    degradation: Optional[DegradationReport] = None

    @property
    def degraded(self) -> bool:
        """True when the suggestions are best-effort rather than complete."""
        return self.degradation is not None and self.degradation.degraded

    @property
    def best(self) -> Optional[Suggestion]:
        """The top-ranked suggestion (the message we lead with)."""
        return self.suggestions[0] if self.suggestions else None

    @property
    def checker_message(self) -> Optional[str]:
        return self.checker_error.render() if self.checker_error else None

    def render(self, limit: int = 3) -> str:
        """Human-readable report (ranked suggestions or the checker error)."""
        if self.ok:
            return "The program type-checks."
        return render_report(self.suggestions, self.checker_message, limit=limit)

    def render_best(self) -> str:
        """Just the single best message."""
        if self.ok:
            return "The program type-checks."
        if self.best is None:
            return self.checker_message or "Ill-typed, and no suggestion found."
        return render_suggestion(self.best)


def explain(
    source: Union[str, Program],
    *,
    enable_triage: bool = True,
    enable_adaptation: bool = True,
    incremental: bool = True,
    max_oracle_calls: Optional[int] = 20000,
    deadline_seconds: Optional[float] = None,
    triage_threshold: int = 5,
    disabled_rules: Sequence[str] = (),
    oracle: Optional[Oracle] = None,
    triage_strategy: str = "greedy",
    eager_enumeration: bool = False,
    custom_rules: Sequence = (),
    tracer=None,
    metrics=None,
) -> ExplainResult:
    """Search for type-error messages for ``source``.

    Parameters mirror the knobs the paper evaluates: ``enable_triage=False``
    reproduces the "without triage" configuration of Section 3, and
    ``disabled_rules`` supports the Figure 7 constructive-change ablation.
    ``incremental=False`` disables the prefix-reuse oracle (every candidate
    is re-inferred from the empty environment — the pre-optimization
    behaviour, kept as an escape hatch and for benchmarking the win).

    The call is best-effort by contract (see :mod:`repro.core.resilience`):
    running out of the oracle budget or the optional wall-clock
    ``deadline_seconds``, and any oracle crash on a pathological candidate,
    never raises — the result carries whatever suggestions were found plus
    a :class:`~repro.core.resilience.DegradationReport` in ``degradation``
    saying exactly what was given up.  Parse errors of ``source`` still
    raise (they are input errors, not search failures).

    ``tracer``/``metrics`` (see :mod:`repro.obs`) switch on telemetry: a
    :class:`~repro.obs.Tracer` records a Perfetto-loadable span tree of the
    whole search, and a :class:`~repro.obs.MetricsRegistry` accumulates the
    counters (oracle calls by outcome, per-rule change accounting, triage
    rounds, suggestions ranked).  Both default to shared null objects with
    no measurable overhead.

    >>> result = explain('let x = 1 + true')
    >>> result.ok
    False
    >>> result.best is not None
    True
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    registry = metrics if metrics is not None else NULL_METRICS
    if isinstance(source, str):
        with tracer.span("parse", chars=len(source)):
            program = parse_program(source)
    else:
        program = source
    config = SearchConfig(
        max_oracle_calls=max_oracle_calls,
        deadline_seconds=deadline_seconds,
        enable_triage=enable_triage,
        enable_adaptation=enable_adaptation,
        incremental=incremental,
        triage_threshold=triage_threshold,
        disabled_rules=disabled_rules,
        triage_strategy=triage_strategy,
        eager_enumeration=eager_enumeration,
        custom_rules=custom_rules,
    )
    searcher = Searcher(oracle=oracle, config=config, tracer=tracer, metrics=registry)
    outcome = searcher.search_program(program)
    with tracer.span("rank", candidates=len(outcome.suggestions)):
        ranked = rank(outcome.suggestions)
    registry.incr("rank.suggestions_ranked", len(ranked))
    return ExplainResult(
        ok=outcome.ok,
        program=program,
        checker_error=outcome.checker_error,
        suggestions=ranked,
        bad_decl_index=outcome.bad_decl_index,
        oracle_calls=outcome.oracle_calls,
        budget_exhausted=outcome.budget_exhausted,
        stats=outcome.stats,
        metrics=metrics,
        degradation=outcome.degradation,
    )
