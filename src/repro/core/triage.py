"""Triage: robust search under multiple independent type errors (Section 2.4).

When removing a whole subtree is the only suggestion regular search can make,
the subtree usually contains *several* independent errors: no single smaller
removal can fix the program.  Triage recovers precision by focusing on one
child at a time while wildcarding away some of its siblings (thereby deleting
their type constraints), then running regular search on the focused child in
that reduced context.

Sibling selection uses the paper's middle road between "remove all n-1
others" (under-constrained) and "minimal subsets" (exponential): cumulatively
remove the other children one at a time, and recurse with the first context
in which the focused child becomes fixable.  Per the paper's footnote, the
all-present context need not be tried (it is known to fail: no single removal
fixed the node) — we start from one sibling removed.

Expressions with *binding occurrences* (``match``/``function``) get the
three-phase treatment of Figure 4: scrutinee first (patterns and arms
removed), then patterns (arms removed), then arm bodies.

Prefix reuse: every context and candidate triage builds derives from the
searcher's root via :func:`repro.tree.replace_at` at paths *inside* the
failing declaration, so the top-level declarations before it are shared by
identity and the oracle's armed :class:`~repro.miniml.infer.PrefixSnapshot`
keeps matching — triage rounds ride the incremental fast path for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.miniml.ast_nodes import (
    EFunction,
    EMatch,
    Expr,
    MatchCase,
    Pattern,
    Program,
)
from repro.tree import Node, Path, get_at, replace_at

from .changes import Suggestion
from .enumerator import wildcard_expr, wildcard_for, wildcard_pattern

if TYPE_CHECKING:  # pragma: no cover
    from .searcher import Searcher


def triage_node(searcher: "Searcher", root: Program, path: Path, depth: int) -> List[Suggestion]:
    """Triage the subtree at ``path``; returns triaged suggestions."""
    # Graceful degradation: past the soft wall-clock deadline triage (the
    # paper's own Figure 7 tail) is shed wholesale — the caller then keeps
    # the wholesale-removal suggestion instead of the isolated errors.
    if searcher._shed("triage"):
        return []
    node = get_at(root, path)
    searcher.metrics.incr("triage.rounds")
    searcher.metrics.observe("triage.depth", depth)
    if searcher.tracer.enabled:
        from repro.obs import format_path
        from repro.tree import node_size

        span = searcher.tracer.span(
            "triage",
            path=format_path(path),
            size=node_size(node),
            depth=depth,
            strategy=searcher.config.triage_strategy,
        )
    else:
        span = searcher.tracer.span("triage")
    with span as sp:
        calls_before = searcher.oracle.calls
        if isinstance(node, (EMatch, EFunction)):
            results = _triage_match(searcher, root, path, node, depth)
        else:
            results = _triage_siblings(searcher, root, path, depth)
        sp.set("suggestions", len(results))
        sp.set("oracle_calls", searcher.oracle.calls - calls_before)
        return results


# ---------------------------------------------------------------------------
# Generic sibling triage
# ---------------------------------------------------------------------------


def _triage_siblings(searcher: "Searcher", root: Program, path: Path, depth: int) -> List[Suggestion]:
    """Focus each expression child in turn, greedily removing other children."""
    siblings = [
        p
        for p in searcher._searchable_children(root, path)
        if isinstance(get_at(root, p), Expr)
    ]
    if len(siblings) < 2:
        return []
    results: List[Suggestion] = []
    for index, focus in enumerate(siblings):
        others = [p for i, p in enumerate(siblings) if i != index]
        found = _find_context(searcher, root, focus, others)
        if found is None:
            continue
        context_root, removed = found
        for suggestion in searcher._search(context_root, focus, depth):
            _mark(suggestion, removed)
            results.append(suggestion)
    return results


def _find_context(
    searcher: "Searcher",
    root: Program,
    focus: Path,
    others: List[Path],
) -> Optional[Tuple[Program, List[Path]]]:
    """Find a reduced context in which the focused child is the problem.

    Two oracle conditions gate every accepted context:

    * removing the focused child must *fix* the context (some fix exists —
      "at the very least, it can be removed", Section 2.4), and
    * keeping the focused child must still *fail* — otherwise the focused
      child is healthy and every error lives in the removed siblings, so
      focusing on it would generate junk suggestions for correct code.

    The sibling-removal strategy is configurable (A2 ablation):

    * ``greedy`` (paper, default): cumulatively wildcard the other children
      one at a time, last first, and take the first context that works;
    * ``remove-all``: wildcard all the other children at once (the paper's
      "may leave e1 less constrained than necessary" extreme);
    * ``exhaustive``: minimal subsets by size ("potentially exponential").
    """
    strategy = searcher.config.triage_strategy
    if strategy == "remove-all":
        return _context_remove_all(searcher, root, focus, others)
    if strategy == "exhaustive":
        return _context_exhaustive(searcher, root, focus, others)
    return _context_greedy(searcher, root, focus, others)


def _focus_wildcard(root: Program, focus: Path):
    return wildcard_for(get_at(root, focus))


def _accept(searcher, context: Program, focus: Path, focus_wildcard) -> bool:
    """The two gating oracle conditions (see :func:`_find_context`)."""
    searcher._tick("triage_tests")
    if not searcher._passes(replace_at(context, focus, focus_wildcard)):
        return False
    searcher._tick("triage_tests")
    return not searcher._passes(context)


def _context_greedy(searcher, root, focus, others):
    focus_wildcard = _focus_wildcard(root, focus)
    if focus_wildcard is None:
        return None
    context = root
    removed: List[Path] = []
    for other in reversed(others):
        wildcard = wildcard_for(get_at(root, other))
        if wildcard is None:
            continue
        context = replace_at(context, other, wildcard)
        removed.append(other)
        searcher._tick("triage_tests")
        if searcher._passes(replace_at(context, focus, focus_wildcard)):
            searcher._tick("triage_tests")
            if searcher._passes(context):
                return None  # the focused child is not one of the problems
            return context, removed
    return None


def _context_remove_all(searcher, root, focus, others):
    focus_wildcard = _focus_wildcard(root, focus)
    if focus_wildcard is None:
        return None
    context = root
    removed: List[Path] = []
    for other in others:
        wildcard = wildcard_for(get_at(root, other))
        if wildcard is None:
            continue
        context = replace_at(context, other, wildcard)
        removed.append(other)
    if not removed:
        return None
    if _accept(searcher, context, focus, focus_wildcard):
        return context, removed
    return None


def _context_exhaustive(searcher, root, focus, others, max_siblings: int = 8):
    from itertools import combinations

    focus_wildcard = _focus_wildcard(root, focus)
    if focus_wildcard is None:
        return None
    removable = [o for o in others if wildcard_for(get_at(root, o)) is not None]
    removable = removable[:max_siblings]
    for size in range(1, len(removable) + 1):
        for subset in combinations(removable, size):
            context = root
            for other in subset:
                context = replace_at(context, other, wildcard_for(get_at(root, other)))
            if _accept(searcher, context, focus, focus_wildcard):
                return context, list(subset)
    return None


def _mark(suggestion: Suggestion, removed: List[Path]) -> None:
    suggestion.triaged = True
    suggestion.removed_paths = removed + suggestion.removed_paths


# ---------------------------------------------------------------------------
# Binding-aware phases for match/function (Figure 4)
# ---------------------------------------------------------------------------


def _rebuild(node, cases: List[MatchCase]):
    if isinstance(node, EMatch):
        return EMatch(node.scrutinee, cases)
    return EFunction(cases)


def _triage_match(
    searcher: "Searcher", root: Program, path: Path, node, depth: int
) -> List[Suggestion]:
    results: List[Suggestion] = []
    has_scrutinee = isinstance(node, EMatch)

    # ---- Phase 1: the scrutinee alone --------------------------------
    if has_scrutinee:
        skeleton_cases = [MatchCase(wildcard_pattern(), wildcard_expr())]
        skeleton_root = replace_at(root, path, _rebuild(node, skeleton_cases))
        scrutinee_path = path + ("scrutinee",)
        searcher._tick("triage_tests")
        if not searcher._passes(skeleton_root):
            # The scrutinee itself is broken: search it in the reduced
            # context and do not proceed to later phases (Fig. 4).
            removable = replace_at(skeleton_root, scrutinee_path, wildcard_expr())
            searcher._tick("triage_tests")
            if searcher._passes(removable):
                removed = _case_paths(node, path)
                for suggestion in searcher._search(skeleton_root, scrutinee_path, depth):
                    _mark(suggestion, removed)
                    results.append(suggestion)
            return results

    # ---- Phase 2: scrutinee + patterns (arm bodies removed) -----------
    pattern_cases = [MatchCase(c.pattern, wildcard_expr()) for c in node.cases]
    phase2_root = replace_at(root, path, _rebuild(node, pattern_cases))
    pattern_paths = [
        path + (("cases", i), "pattern") for i in range(len(node.cases))
    ]
    searcher._tick("triage_tests")
    if not searcher._passes(phase2_root):
        # Patterns conflict with the scrutinee or one another: triage them.
        body_paths = _body_paths(node, path)
        for index, focus in enumerate(pattern_paths):
            others = [p for i, p in enumerate(pattern_paths) if i != index]
            found = _find_context(searcher, phase2_root, focus, others)
            if found is None:
                continue
            context_root, removed = found
            for suggestion in searcher._search(context_root, focus, depth):
                _mark(suggestion, removed + body_paths)
                results.append(suggestion)
        return results

    # ---- Phase 3: arm bodies ------------------------------------------
    body_paths = _body_paths(node, path)
    for index, focus in enumerate(body_paths):
        others = [p for i, p in enumerate(body_paths) if i != index]
        found = _find_context(searcher, root, focus, others)
        if found is None:
            continue
        context_root, removed = found
        for suggestion in searcher._search(context_root, focus, depth):
            _mark(suggestion, removed)
            results.append(suggestion)
    return results


def _case_paths(node, path: Path) -> List[Path]:
    return [path + (("cases", i),) for i in range(len(node.cases))]


def _body_paths(node, path: Path) -> List[Path]:
    return [path + (("cases", i), "body") for i in range(len(node.cases))]
