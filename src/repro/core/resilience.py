"""Fault tolerance for the search: deadlines and graceful degradation.

SEMINAL's architecture treats the type-checker as an opaque yes/no oracle;
this module extends that stance to *failures*: the oracle (or the search
itself) may run out of budget, blow a wall-clock deadline, crash on a
pathological candidate, or discover that its incremental fast path lied.
None of those may abort an ``explain()`` call — the contract is strictly
best-effort, the way SMT-based localizers bound solver effort per query
(Pavlinovic et al.) and Charguéraud's OCaml work layers message generation
atop an unmodified checker.  Instead every search returns the suggestions
found so far plus a :class:`DegradationReport` saying exactly what was
given up and why.

Pieces:

* :class:`Deadline` — a monotonic wall-clock budget with a *soft* horizon:
  past ``soft_fraction`` of the deadline the searcher sheds its expensive
  phases (constructive enumeration, adaptation, triage) so the cheap
  removal results already in hand survive; past the full deadline the next
  oracle tick raises :class:`DeadlineExceeded`, which the searcher catches
  at the top the same way it catches ``BudgetExceeded``.
* :class:`DegradationReport` — the structured account attached to every
  :class:`~repro.core.searcher.SearchOutcome` / ``ExplainResult``:
  which reasons fired (``budget``/``deadline``/``crash``/``fallback``),
  how many oracle crashes and prefix fallbacks occurred, which phases were
  shed, elapsed wall clock, and a bounded sample of crash tracebacks.
* :class:`RestartPolicy` / :class:`CircuitBreaker` — the supervision
  contract for the parallel worker pool: how often crashed or hung workers
  may be respawned (bounded exponential backoff within a rolling window)
  before the pool trips open and degrades to serial, and how long the
  cool-down lasts before the breaker half-opens to probe for recovery.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: The four ways a search degrades (``DegradationReport.reasons`` entries).
REASON_BUDGET = "budget"
REASON_DEADLINE = "deadline"
REASON_CRASH = "crash"
REASON_FALLBACK = "fallback"

ALL_REASONS = (REASON_BUDGET, REASON_DEADLINE, REASON_CRASH, REASON_FALLBACK)


class DeadlineExceeded(Exception):
    """The search blew its wall-clock deadline.

    Raised by :meth:`Searcher._tick <repro.core.searcher.Searcher._tick>`
    between oracle tests and caught in ``search_program`` — it never
    escapes ``explain()``.
    """

    def __init__(self, seconds: float, elapsed: float):
        super().__init__(
            f"search deadline of {seconds:g}s exceeded ({elapsed:.3f}s elapsed)"
        )
        self.seconds = seconds
        self.elapsed = elapsed


class Deadline:
    """A wall-clock budget on the monotonic clock.

    ``seconds=None`` means "no deadline": :meth:`expired` and
    :meth:`soft_expired` are constant ``False`` and only :meth:`elapsed`
    does any timekeeping.  ``soft_fraction`` positions the soft horizon at
    which the searcher starts shedding optional phases (default 85% of the
    budget — late enough to matter only when the hard deadline is a real
    threat, early enough to leave time for wrapping up cheap work).
    """

    __slots__ = ("seconds", "soft_fraction", "_clock", "_start")

    def __init__(
        self,
        seconds: Optional[float],
        soft_fraction: float = 0.85,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.seconds = seconds
        self.soft_fraction = soft_fraction
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def soft_expired(self) -> bool:
        return (
            self.seconds is not None
            and self.elapsed() >= self.seconds * self.soft_fraction
        )


#: Circuit-breaker states (``CircuitBreaker.state`` values).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RestartPolicy:
    """Supervision knobs for the worker pool.

    A worker death (crash or hang) costs one *restart*: the pool tears the
    executor down and respawns it after ``backoff_for(n)`` seconds, where
    ``n`` is the restart ordinal — bounded exponential, jitter-free like
    :mod:`repro.core.retry`.  ``max_restarts`` failures within a rolling
    ``window_seconds`` trip the breaker :data:`BREAKER_OPEN`; after
    ``cooldown_seconds`` it half-opens and the next batch probes whether
    parallelism can resume.

    ``max_probes`` bounds the bisection work spent re-checking a failed
    batch (each probe is one worker round trip); ``poison_confirmations``
    is how many *consecutive* single-candidate failures — each on a fresh
    worker — are required before a candidate is quarantined as poison.
    Fresh-worker confirmation absolves candidates that merely sat on an
    unlucky schedule (e.g. a chaos plan crashing every Nth call) while
    still catching content-keyed reproducible killers.

    ``hang_timeout_seconds`` caps how long the pool waits on one batch
    before declaring the worker hung; ``None`` derives the cap from the
    search deadline when there is one and otherwise waits indefinitely
    (the pre-supervision behavior).
    """

    max_restarts: int = 3
    window_seconds: float = 30.0
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.5
    cooldown_seconds: float = 5.0
    hang_timeout_seconds: Optional[float] = None
    max_probes: int = 16
    poison_confirmations: int = 2

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {self.window_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        if self.hang_timeout_seconds is not None and self.hang_timeout_seconds <= 0:
            raise ValueError(
                "hang_timeout_seconds must be > 0 or None, "
                f"got {self.hang_timeout_seconds}"
            )
        if self.max_probes < 1:
            raise ValueError(f"max_probes must be >= 1, got {self.max_probes}")
        if self.poison_confirmations < 1:
            raise ValueError(
                "poison_confirmations must be >= 1, "
                f"got {self.poison_confirmations}"
            )

    def backoff_for(self, restart: int) -> float:
        """Seconds to wait before restart number ``restart`` (1-based)."""
        if restart < 1:
            raise ValueError(f"restart must be >= 1, got {restart}")
        delay = self.backoff_seconds * (self.backoff_multiplier ** (restart - 1))
        return min(delay, self.max_backoff_seconds)


class CircuitBreaker:
    """Rolling-window failure counter with open/half-open/closed states.

    Closed is normal operation.  More than ``policy.max_restarts``
    failures within ``policy.window_seconds`` trip it open: :meth:`allow`
    answers ``False`` until ``policy.cooldown_seconds`` have passed, then
    flips to half-open and answers ``True`` so one batch can probe the
    pool.  A success in half-open closes the breaker and clears history; a
    failure re-opens it with a fresh cool-down.

    The clock is injectable (same plumbing as :class:`Deadline`) and
    ``on_transition(old_state, new_state)`` lets the owner wire metrics
    and events without this class knowing about either.
    """

    __slots__ = ("policy", "_clock", "_on_transition", "state", "_failures",
                 "_opened_at")

    def __init__(
        self,
        policy: Optional[RestartPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        self.policy = policy if policy is not None else RestartPolicy()
        self._clock = clock
        self._on_transition = on_transition
        self.state = BREAKER_CLOSED
        self._failures: List[float] = []
        self._opened_at: Optional[float] = None

    @property
    def recent_failures(self) -> int:
        return len(self._failures)

    def _set(self, state: str) -> None:
        if state != self.state:
            old, self.state = self.state, state
            if self._on_transition is not None:
                self._on_transition(old, state)

    def allow(self) -> bool:
        """May the next batch run in parallel?  Idempotent; an open breaker
        whose cool-down has elapsed transitions to half-open here."""
        if self.state == BREAKER_OPEN:
            if (
                self._opened_at is not None
                and self._clock() - self._opened_at >= self.policy.cooldown_seconds
            ):
                self._set(BREAKER_HALF_OPEN)
                return True
            return False
        return True

    def record_failure(self) -> str:
        """Count one worker death; returns the resulting state."""
        now = self._clock()
        if self.state == BREAKER_HALF_OPEN:
            # The recovery probe failed: straight back to open, fresh
            # cool-down, history kept.
            self._opened_at = now
            self._set(BREAKER_OPEN)
            return self.state
        self._failures = [
            t for t in self._failures if now - t <= self.policy.window_seconds
        ]
        self._failures.append(now)
        if len(self._failures) > self.policy.max_restarts:
            self._opened_at = now
            self._set(BREAKER_OPEN)
        return self.state

    def record_success(self) -> None:
        """A parallel batch completed cleanly: a half-open breaker closes
        and forgets its failure history."""
        if self.state == BREAKER_HALF_OPEN:
            self._failures = []
            self._opened_at = None
            self._set(BREAKER_CLOSED)


@dataclass
class DegradationReport:
    """What a search gave up, and why — attached to every outcome.

    ``reasons`` is the deduplicated, first-fired-first order list of
    degradation causes (subset of :data:`ALL_REASONS`); an empty list
    means the search ran to completion at full fidelity.  The counters
    mirror the oracle's resilience accounting at the moment the search
    finished, so the report is self-contained even after the oracle is
    reset for the next search.
    """

    reasons: List[str] = field(default_factory=list)
    #: Oracle invocations whose crash was converted to "candidate rejected".
    oracle_crashes: int = 0
    #: Prefix-reuse checks that crashed and were re-run from scratch.
    prefix_fallbacks: int = 0
    #: Candidates rejected by the depth pre-check (never typechecked).
    depth_rejections: int = 0
    #: Parallel worker-process failures (crashes and hang kills).  Each
    #: costs a supervised respawn; only a restart storm trips the breaker
    #: and reroutes candidates through the serial oracle.
    worker_crashes: int = 0
    #: Worker executors respawned by the supervisor after a death.
    worker_restarts: int = 0
    #: Candidates quarantined as reproducible worker killers (each is
    #: accounted as an ``oracle.crashes`` rejection, exactly as a serial
    #: in-process crash would be).
    quarantined: int = 0
    #: Runaway checks converted to clean crash verdicts by the per
    #: -candidate wall-clock or per-worker RSS watchdog.
    watchdog_kills: int = 0
    #: Phase name -> number of times the soft deadline shed it.
    phases_shed: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    deadline_seconds: Optional[float] = None
    budget: Optional[int] = None
    #: Bounded sample of crash tracebacks (see ``Oracle.crash_samples``).
    crash_samples: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The flight-recorder hook; not a dataclass field so it stays out
        # of __eq__/repr and (via __getstate__) out of pickles — reports
        # cross process boundaries in batch mode, event sinks do not.
        self._events = None

    def attach_events(self, events) -> None:
        """Hook a :class:`~repro.obs.EventLog`: every newly noted reason
        emits a ``degraded`` event, every first shed of a phase a
        ``phase_shed`` event, as they happen."""
        self._events = events

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_events", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._events = None

    @property
    def degraded(self) -> bool:
        return bool(self.reasons)

    def note(self, reason: str) -> None:
        """Record one degradation cause (idempotent)."""
        if reason not in self.reasons:
            self.reasons.append(reason)
            if self._events is not None:
                self._events.emit("degraded", reason=reason)

    def note_shed(self, phase: str) -> None:
        """Record that the soft deadline shed one unit of ``phase`` work."""
        first = phase not in self.phases_shed
        self.phases_shed[phase] = self.phases_shed.get(phase, 0) + 1
        if first and self._events is not None:
            self._events.emit("phase_shed", phase=phase)

    def summary(self) -> str:
        """One-line human-readable account (the ``--stats`` line)."""
        if not self.degraded:
            return "search degradation: none"
        parts = [f"search degradation: degraded ({'+'.join(self.reasons)})"]
        if self.oracle_crashes:
            parts.append(f"crashes={self.oracle_crashes}")
        if self.prefix_fallbacks:
            parts.append(f"prefix_fallbacks={self.prefix_fallbacks}")
        if self.depth_rejections:
            parts.append(f"depth_rejections={self.depth_rejections}")
        if self.worker_crashes:
            parts.append(f"worker_crashes={self.worker_crashes}")
        if self.worker_restarts:
            parts.append(f"worker_restarts={self.worker_restarts}")
        if self.quarantined:
            parts.append(f"quarantined={self.quarantined}")
        if self.watchdog_kills:
            parts.append(f"watchdog_kills={self.watchdog_kills}")
        if self.phases_shed:
            shed = ",".join(f"{k}x{v}" for k, v in sorted(self.phases_shed.items()))
            parts.append(f"shed={shed}")
        parts.append(f"elapsed={self.elapsed_seconds:.3f}s")
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:g}s")
        return " ".join(parts)
