"""Fault tolerance for the search: deadlines and graceful degradation.

SEMINAL's architecture treats the type-checker as an opaque yes/no oracle;
this module extends that stance to *failures*: the oracle (or the search
itself) may run out of budget, blow a wall-clock deadline, crash on a
pathological candidate, or discover that its incremental fast path lied.
None of those may abort an ``explain()`` call — the contract is strictly
best-effort, the way SMT-based localizers bound solver effort per query
(Pavlinovic et al.) and Charguéraud's OCaml work layers message generation
atop an unmodified checker.  Instead every search returns the suggestions
found so far plus a :class:`DegradationReport` saying exactly what was
given up and why.

Pieces:

* :class:`Deadline` — a monotonic wall-clock budget with a *soft* horizon:
  past ``soft_fraction`` of the deadline the searcher sheds its expensive
  phases (constructive enumeration, adaptation, triage) so the cheap
  removal results already in hand survive; past the full deadline the next
  oracle tick raises :class:`DeadlineExceeded`, which the searcher catches
  at the top the same way it catches ``BudgetExceeded``.
* :class:`DegradationReport` — the structured account attached to every
  :class:`~repro.core.searcher.SearchOutcome` / ``ExplainResult``:
  which reasons fired (``budget``/``deadline``/``crash``/``fallback``),
  how many oracle crashes and prefix fallbacks occurred, which phases were
  shed, elapsed wall clock, and a bounded sample of crash tracebacks.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: The four ways a search degrades (``DegradationReport.reasons`` entries).
REASON_BUDGET = "budget"
REASON_DEADLINE = "deadline"
REASON_CRASH = "crash"
REASON_FALLBACK = "fallback"

ALL_REASONS = (REASON_BUDGET, REASON_DEADLINE, REASON_CRASH, REASON_FALLBACK)


class DeadlineExceeded(Exception):
    """The search blew its wall-clock deadline.

    Raised by :meth:`Searcher._tick <repro.core.searcher.Searcher._tick>`
    between oracle tests and caught in ``search_program`` — it never
    escapes ``explain()``.
    """

    def __init__(self, seconds: float, elapsed: float):
        super().__init__(
            f"search deadline of {seconds:g}s exceeded ({elapsed:.3f}s elapsed)"
        )
        self.seconds = seconds
        self.elapsed = elapsed


class Deadline:
    """A wall-clock budget on the monotonic clock.

    ``seconds=None`` means "no deadline": :meth:`expired` and
    :meth:`soft_expired` are constant ``False`` and only :meth:`elapsed`
    does any timekeeping.  ``soft_fraction`` positions the soft horizon at
    which the searcher starts shedding optional phases (default 85% of the
    budget — late enough to matter only when the hard deadline is a real
    threat, early enough to leave time for wrapping up cheap work).
    """

    __slots__ = ("seconds", "soft_fraction", "_clock", "_start")

    def __init__(
        self,
        seconds: Optional[float],
        soft_fraction: float = 0.85,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.seconds = seconds
        self.soft_fraction = soft_fraction
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def soft_expired(self) -> bool:
        return (
            self.seconds is not None
            and self.elapsed() >= self.seconds * self.soft_fraction
        )


@dataclass
class DegradationReport:
    """What a search gave up, and why — attached to every outcome.

    ``reasons`` is the deduplicated, first-fired-first order list of
    degradation causes (subset of :data:`ALL_REASONS`); an empty list
    means the search ran to completion at full fidelity.  The counters
    mirror the oracle's resilience accounting at the moment the search
    finished, so the report is self-contained even after the oracle is
    reset for the next search.
    """

    reasons: List[str] = field(default_factory=list)
    #: Oracle invocations whose crash was converted to "candidate rejected".
    oracle_crashes: int = 0
    #: Prefix-reuse checks that crashed and were re-run from scratch.
    prefix_fallbacks: int = 0
    #: Candidates rejected by the depth pre-check (never typechecked).
    depth_rejections: int = 0
    #: Parallel worker-process failures (each marks the whole pool broken
    #: and reroutes the remaining candidates through the serial oracle).
    worker_crashes: int = 0
    #: Phase name -> number of times the soft deadline shed it.
    phases_shed: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    deadline_seconds: Optional[float] = None
    budget: Optional[int] = None
    #: Bounded sample of crash tracebacks (see ``Oracle.crash_samples``).
    crash_samples: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The flight-recorder hook; not a dataclass field so it stays out
        # of __eq__/repr and (via __getstate__) out of pickles — reports
        # cross process boundaries in batch mode, event sinks do not.
        self._events = None

    def attach_events(self, events) -> None:
        """Hook a :class:`~repro.obs.EventLog`: every newly noted reason
        emits a ``degraded`` event, every first shed of a phase a
        ``phase_shed`` event, as they happen."""
        self._events = events

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_events", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._events = None

    @property
    def degraded(self) -> bool:
        return bool(self.reasons)

    def note(self, reason: str) -> None:
        """Record one degradation cause (idempotent)."""
        if reason not in self.reasons:
            self.reasons.append(reason)
            if self._events is not None:
                self._events.emit("degraded", reason=reason)

    def note_shed(self, phase: str) -> None:
        """Record that the soft deadline shed one unit of ``phase`` work."""
        first = phase not in self.phases_shed
        self.phases_shed[phase] = self.phases_shed.get(phase, 0) + 1
        if first and self._events is not None:
            self._events.emit("phase_shed", phase=phase)

    def summary(self) -> str:
        """One-line human-readable account (the ``--stats`` line)."""
        if not self.degraded:
            return "search degradation: none"
        parts = [f"search degradation: degraded ({'+'.join(self.reasons)})"]
        if self.oracle_crashes:
            parts.append(f"crashes={self.oracle_crashes}")
        if self.prefix_fallbacks:
            parts.append(f"prefix_fallbacks={self.prefix_fallbacks}")
        if self.depth_rejections:
            parts.append(f"depth_rejections={self.depth_rejections}")
        if self.worker_crashes:
            parts.append(f"worker_crashes={self.worker_crashes}")
        if self.phases_shed:
            shed = ",".join(f"{k}x{v}" for k, v in sorted(self.phases_shed.items()))
            parts.append(f"shed={shed}")
        parts.append(f"elapsed={self.elapsed_seconds:.3f}s")
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:g}s")
        return " ".join(parts)
