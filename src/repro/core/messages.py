"""Rendering ranked suggestions as the paper's error messages.

A message has the shape of the paper's Figure 2 right-hand side::

    Try replacing
        fun (x, y) -> x + y
    with
        fun x y -> x + y
    of type int -> int -> int
    within context
        let lst = map2 (fun x y -> x + y) [1; 2; 3] [4; 5; 6]

Variants:

* removals print the wildcard ``[[...]]`` and the type the hole is used at;
* adaptations explain that the expression is fine in isolation;
* triaged suggestions carry the "Your code has several type errors" preamble
  and show the triaged-away program parts as ``[[...]]``;
* unbound variables (removal works, adaptation does not — Section 3.3) are
  reported directly as "x appears to be unbound".

Types come from re-running the checker once on the *fixed* program with
``record_types`` on — the moral equivalent of reading OCaml's ``.annot``
file; the oracle used during search never pays this cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.miniml.ast_nodes import Decl, Expr, Program
from repro.miniml.infer import typecheck_program
from repro.miniml.pretty import WILDCARD_TEXT, pretty, pretty_decl
from repro.tree import Node, Path, get_at

from .changes import KIND_ADAPT, KIND_REMOVE, Suggestion

#: Contexts longer than this fall back to the nearest small enclosing
#: expression rather than the whole declaration.
MAX_CONTEXT_CHARS = 120


def replacement_type(suggestion: Suggestion) -> Optional[str]:
    """Type of the replacement inside the fixed program (memoized)."""
    if suggestion.new_type is not None:
        return suggestion.new_type
    result = typecheck_program(suggestion.program, record_types=True)
    if not result.ok:  # pragma: no cover - the suggestion was verified
        return None
    node = get_at(suggestion.program, suggestion.change.path)
    target: Node = node
    if suggestion.kind == KIND_ADAPT:
        # The adapt wrapper prints as its argument; report the argument type.
        inner = node.children()
        if len(inner) == 2:  # [adapt-var, argument]
            target = inner[1]
    text = result.type_str_of(target)
    suggestion.new_type = text
    return text


def context_text(suggestion: Suggestion) -> str:
    """The enclosing program fragment, with the replacement spliced in."""
    path = suggestion.change.path
    program = suggestion.program
    # Prefer the whole top-level declaration if it stays readable.
    if path and isinstance(path[0], tuple) and path[0][0] == "decls":
        decl = get_at(program, path[:1])
        rendered = pretty_decl(decl)
        if len(rendered) <= MAX_CONTEXT_CHARS:
            return rendered
    # Otherwise the nearest enclosing expression that stays readable.
    for cut in range(1, len(path)):
        ancestor = get_at(program, path[:-cut])
        if isinstance(ancestor, (Expr, Decl)):
            rendered = pretty(ancestor)
            if len(rendered) <= MAX_CONTEXT_CHARS:
                return rendered
    node = get_at(program, path)
    return pretty(node)


def render_suggestion(suggestion: Suggestion) -> str:
    """One full error message for one suggestion."""
    change = suggestion.change
    original_text = pretty(change.original)
    lines: List[str] = []
    if suggestion.triaged:
        lines.append(
            "Your code has several type errors. If you ignore the "
            "surrounding code (shown as " + WILDCARD_TEXT + "):"
        )
    if suggestion.unbound_variable is not None:
        lines.append(f"The variable {suggestion.unbound_variable} appears to be unbound.")
        lines.append(f"No change at its uses can make the program type-check; try removing or renaming it")
        lines.append(f"within context {context_text(suggestion)}")
        return "\n".join(lines)
    if suggestion.kind == KIND_ADAPT:
        type_text = replacement_type(suggestion)
        of_type = f" (of type {type_text})" if type_text else ""
        lines.append(
            f"The expression {original_text}{of_type} type-checks by itself "
            "but not in its context; try changing how its result is used"
        )
        lines.append(f"within context {context_text(suggestion)}")
        return "\n".join(lines)
    replacement_text = WILDCARD_TEXT if suggestion.kind == KIND_REMOVE else pretty(change.replacement)
    type_text = replacement_type(suggestion)
    message = f"Try replacing {original_text} with {replacement_text}"
    if type_text:
        message += f" of type {type_text}"
    lines.append(message)
    lines.append(f"within context {context_text(suggestion)}")
    if suggestion.triaged:
        lines.append("(other type errors remain; this change alone will not make the program type-check)")
    return "\n".join(lines)


def render_report(
    suggestions: List[Suggestion],
    checker_message: Optional[str] = None,
    limit: int = 3,
) -> str:
    """The ranked multi-suggestion report shown to the programmer."""
    if not suggestions:
        if checker_message:
            return (
                "No search suggestion found; the type-checker reports:\n"
                + checker_message
            )
        return "No suggestion found."
    parts = []
    for i, s in enumerate(suggestions[:limit], start=1):
        header = f"Suggestion {i}:" if len(suggestions) > 1 else "Suggestion:"
        parts.append(header + "\n" + render_suggestion(s))
    return "\n\n".join(parts)
