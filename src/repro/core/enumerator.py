"""The enumerator: per-node-kind catalogs of candidate changes.

Section 2.2 ("Modular Implementation") splits the changer into a *searcher*
(which owns the worklist and calls the oracle) and an *enumerator* — "a giant
case expression that matches on the sort of node it is given and produces a
list of modifications".  Adding a new constructive change is a few lines in
one table here and never touches the search procedure.

The catalog reproduces every change in the paper's Figure 3:

=====================================  =======================================
Paper                                  Rule tag
=====================================  =======================================
``f a1 a2 a3 -> f a1 a3``              ``drop-arg``
``f a1 a2 a3 -> f a1 [[...]] a2 a3``   ``insert-arg``
``f a1 a2 a3 -> f a3 a2 a1``           ``permute-args`` (probe-gated)
``f a1 a2 a3 -> f (a1 a2 a3)``         ``nest-call``
``f a1 a2 a3 -> f (a1,a2,a3)``         ``tuple-args``
``f (a1, a2, a3) -> f a1 a2 a3``       ``untuple-args``
``e1.fld := e2 -> e1.fld <- e2``       ``refupdate-to-fieldset``
``[e1, e2, e3] -> [e1; e2; e3]``       ``list-of-tuple-to-list``
``let f x = e1 -> let rec f x = e1``   ``make-rec``
=====================================  =======================================

plus curry/tuple conversions on functions (the Fig. 2 fix), operator
substitutions, pattern changes, match-arm surgery, and the nested-match
reparenthesizing change the paper singles out in Figure 7 as its one
performance bug.

Changes gated on probes use lazy thunks so neither syntax nor oracle calls
are spent unless the probe outcome warrants them.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence

from repro.miniml.ast_nodes import (
    Binding,
    DLet,
    EAnnot,
    ETry,
    EApp,
    EBinop,
    ECons,
    EConstructor,
    EFieldGet,
    EFieldSet,
    EFun,
    EFunction,
    EIf,
    EList,
    ELet,
    EMatch,
    ERaise,
    ETuple,
    EVar,
    Expr,
    MatchCase,
    Pattern,
    PCons,
    PList,
    PTuple,
    PVar,
    PWild,
)
from repro.miniml.pretty import ADAPT_NAME, pretty_expr, pretty_pattern
from repro.tree import Node, Path, mark_synthetic

from .changes import (
    KIND_CONSTRUCTIVE,
    Change,
    ChangeNode,
    flat,
)

# ---------------------------------------------------------------------------
# Wildcard and adaptation builders (Sections 2.1 and 2.3)
# ---------------------------------------------------------------------------


def wildcard_expr() -> Expr:
    """The expression wildcard: ``raise Foo``, legal at any type.

    The ``synthetic`` flag only affects pretty-printing (``[[...]]``); the
    type-checker sees a perfectly ordinary raise expression.
    """
    exn = EConstructor("Foo")
    exn.synthetic = True
    return mark_synthetic(ERaise(exn))


def wildcard_pattern() -> Pattern:
    """The pattern wildcard ``_``."""
    return mark_synthetic(PWild())


def adapt_expr(e: Expr) -> Expr:
    """Wrap ``e`` as ``adapt e`` where ``adapt : 'a -> 'b`` (Section 2.3).

    Type-checks exactly when ``e`` is well-typed ignoring the type its
    context demands.
    """
    fn = EVar(ADAPT_NAME)
    fn.synthetic = True
    wrapped = EApp(fn, [e])
    wrapped.synthetic = False  # prints as its argument, not as [[...]]
    return wrapped


def wildcard_for(node: Node) -> Optional[Node]:
    """The removal replacement for a node, or None if not removable."""
    if isinstance(node, Expr):
        return wildcard_expr()
    if isinstance(node, Pattern):
        return wildcard_pattern()
    return None


def is_searchable(node: Node) -> bool:
    """Nodes the searcher recurses on (expressions and patterns)."""
    return isinstance(node, (Expr, Pattern))


# ---------------------------------------------------------------------------
# Change-construction helpers
# ---------------------------------------------------------------------------


def constructive_change(
    path: Path,
    original: Node,
    replacement: Node,
    rule: str,
    description: str,
    is_probe: bool = False,
) -> Change:
    """Public constructor for custom constructive changes (see
    :meth:`MiniMLEnumerator.register`)."""
    return _change(path, original, replacement, rule, description, is_probe)


def _change(path: Path, original: Node, replacement: Node, rule: str, description: str,
            is_probe: bool = False) -> Change:
    return Change(
        path=path,
        original=original,
        replacement=replacement,
        kind=KIND_CONSTRUCTIVE,
        description=description,
        is_probe=is_probe,
        rule=rule,
    )


_OPERATOR_ALTERNATIVES = {
    "=": ["==", ":="],
    "==": ["="],
    "!=": ["<>"],
    "<>": ["!="],
    ":=": ["="],
    "+": ["+.", "^", "@"],
    "-": ["-."],
    "*": ["*."],
    "/": ["/."],
    "+.": ["+"],
    "-.": ["-"],
    "*.": ["*"],
    "/.": ["/"],
    "^": ["+", "@"],
    "@": ["^", "+"],
}

_PRINT_FAMILY = ("print_string", "print_int", "print_endline")

#: Stdlib modules whose functions students call unqualified by mistake
#: (``map`` for ``List.map``).  Pure language knowledge, no type knowledge.
_QUALIFYING_MODULES = ("List", "String")


class MiniMLEnumerator:
    """Constructive-change catalog for MiniML.

    ``disabled_rules`` supports the ablation benchmarks: e.g. disabling
    ``reparen-match`` reproduces the paper's Figure 7 middle curve.
    """

    def __init__(
        self,
        disabled_rules: Sequence[str] = (),
        eager: bool = False,
        custom_rules: Sequence[Callable[[Node, Path], List[ChangeNode]]] = (),
        metrics=None,
    ):
        from repro.obs import NULL_METRICS

        #: Telemetry sink: ``enum.generated.<rule>`` counts every candidate
        #: this catalog hands to the searcher (lazily expanded follow-ups
        #: are counted by the searcher as it unfolds them).
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.disabled_rules = frozenset(disabled_rules)
        #: Eager mode flattens every probe-gated collection up front —
        #: the "large flat list of changes" strawman of Section 2.2, kept
        #: for the A1 ablation benchmark (oracle-call counts).
        self.eager = eager
        #: User-registered change generators — the paper's Section 6 "open
        #: framework where programmers could describe new ... constructive
        #: changes", safe because a bad change can never threaten compiler
        #: correctness (the oracle rejects anything that does not check).
        self.custom_rules: List[Callable[[Node, Path], List[ChangeNode]]] = list(custom_rules)

    def register(self, rule: Callable[[Node, Path], List[ChangeNode]]) -> None:
        """Add a custom change generator: ``rule(node, path) -> [ChangeNode]``.

        The generator is consulted for every node the searcher visits; use
        :func:`constructive_change` to build its changes.
        """
        self.custom_rules.append(rule)

    # -- public API ------------------------------------------------------

    def changes(self, node: Node, path: Path) -> List[ChangeNode]:
        """All candidate changes for ``node`` (lazy followups included)."""
        out = self._changes(node, path)
        if self.eager:
            out = self._flatten(out)
        if self.metrics.enabled:
            for cn in out:
                self.metrics.incr(f"enum.generated.{cn.change.rule or 'unknown'}")
        return out

    def _flatten(self, nodes: List[ChangeNode]) -> List[ChangeNode]:
        flat_list: List[ChangeNode] = []
        for cn in nodes:
            if cn.change.is_probe:
                if cn.on_success is not None:
                    flat_list.extend(self._flatten(cn.on_success()))
            else:
                flat_list.append(ChangeNode(cn.change))
                if cn.on_success is not None:
                    flat_list.extend(self._flatten(cn.on_success()))
                if cn.on_failure is not None:
                    flat_list.extend(self._flatten(cn.on_failure()))
        return flat_list

    def _changes(self, node: Node, path: Path) -> List[ChangeNode]:
        out: List[ChangeNode] = []
        if isinstance(node, EApp):
            out.extend(self._app_changes(node, path))
        if isinstance(node, EFun):
            out.extend(self._fun_changes(node, path))
        if isinstance(node, EBinop):
            out.extend(self._binop_changes(node, path))
        if isinstance(node, EFieldSet):
            out.extend(self._fieldset_changes(node, path))
        if isinstance(node, EList):
            out.extend(self._list_changes(node, path))
        if isinstance(node, ETuple):
            out.extend(self._tuple_changes(node, path))
        if isinstance(node, ECons):
            out.extend(self._cons_changes(node, path))
        if isinstance(node, EIf):
            out.extend(self._if_changes(node, path))
        if isinstance(node, (EMatch, EFunction)):
            out.extend(self._match_changes(node, path))
        if isinstance(node, ETry):
            out.extend(self._try_changes(node, path))
        if isinstance(node, EAnnot):
            out.extend(self._annot_changes(node, path))
        if isinstance(node, ELet):
            out.extend(self._let_changes(node, path))
        if isinstance(node, DLet):
            out.extend(self._dlet_changes(node, path))
        if isinstance(node, EVar):
            out.extend(self._var_changes(node, path))
        if isinstance(node, PTuple):
            out.extend(self._ptuple_changes(node, path))
        if isinstance(node, PList):
            out.extend(self._plist_changes(node, path))
        if isinstance(node, PCons):
            out.extend(self._pcons_changes(node, path))
        for rule in self.custom_rules:
            out.extend(rule(node, path))
        return [cn for cn in out if cn.change.rule not in self.disabled_rules]

    # -- function applications -------------------------------------------

    def _app_changes(self, node: EApp, path: Path) -> List[ChangeNode]:
        out: List[ChangeNode] = []
        n = len(node.args)
        # Remove an argument.
        for i in range(n):
            rest = node.args[:i] + node.args[i + 1 :]
            replacement: Expr = EApp(node.func, rest) if rest else node.func
            out.extend(
                flat([_change(path, node, replacement, "drop-arg",
                              f"remove argument {i + 1} ({pretty_expr(node.args[i])})")])
            )
        # Add a wildcard argument at each position.
        for i in range(n + 1):
            args = list(node.args)
            args.insert(i, wildcard_expr())
            out.extend(
                flat([_change(path, node, EApp(node.func, args), "insert-arg",
                              f"add an argument in position {i + 1}")])
            )
        # Swap two arguments directly (cheap); permutations probe-gated.
        if n == 2:
            swapped = EApp(node.func, [node.args[1], node.args[0]])
            out.extend(flat([_change(path, node, swapped, "permute-args",
                                     "swap the two arguments")]))
        elif 3 <= n <= 4:
            out.append(self._permutation_probe(node, path))
        # Reassociate into a nested call: f a1 a2 a3 -> f (a1 a2 a3).
        if n >= 2:
            nested = EApp(node.func, [EApp(node.args[0], node.args[1:])])
            out.extend(flat([_change(path, node, nested, "nest-call",
                                     "apply the first argument to the rest")]))
            tupled = EApp(node.func, [ETuple(list(node.args))])
            out.extend(flat([_change(path, node, tupled, "tuple-args",
                                     "pass the arguments as one tuple")]))
        # print_string/print_int/print_endline confusion (ad hoc, common).
        if isinstance(node.func, EVar) and node.func.name in _PRINT_FAMILY:
            for alt in _PRINT_FAMILY:
                if alt != node.func.name:
                    out.extend(flat([_change(path, node, EApp(EVar(alt), list(node.args)),
                                             "swap-print-fn", f"use {alt} instead")]))
        # f (a1, a2) -> f a1 a2.
        if n == 1 and isinstance(node.args[0], ETuple):
            curried = EApp(node.func, list(node.args[0].items))
            out.extend(flat([_change(path, node, curried, "untuple-args",
                                     "pass the tuple components as separate arguments")]))
        return out

    def _permutation_probe(self, node: EApp, path: Path) -> ChangeNode:
        """Try all-wildcard arguments first; permute only if that fits.

        This is the paper's flagship lazy collection: permutations are
        exponential, so we pay for them only when some same-arity call
        could type-check here at all.
        """
        n = len(node.args)
        probe = _change(
            path, node, EApp(node.func, [wildcard_expr() for _ in range(n)]),
            "permute-args", f"probe: any {n}-argument call", is_probe=True,
        )

        def followups() -> List[ChangeNode]:
            changes = []
            for perm in itertools.permutations(range(n)):
                if perm == tuple(range(n)):
                    continue
                permuted = EApp(node.func, [node.args[i] for i in perm])
                changes.append(_change(path, node, permuted, "permute-args",
                                       "reorder the arguments"))
            return flat(changes)

        return ChangeNode(probe, on_success=followups)

    # -- functions ---------------------------------------------------------

    def _fun_changes(self, node: EFun, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        # fun (x, y) -> e   =>   fun x y -> e       (the Fig. 2 fix)
        if len(node.params) == 1 and isinstance(node.params[0], PTuple):
            out.append(_change(path, node, EFun(list(node.params[0].items), node.body),
                               "curry-params", "take curried arguments instead of a tuple"))
        # fun x y -> e      =>   fun (x, y) -> e
        if len(node.params) >= 2:
            out.append(_change(path, node, EFun([PTuple(list(node.params))], node.body),
                               "tuple-params", "take one tuple argument instead of curried ones"))
        # Add a parameter (front and back).
        out.append(_change(path, node, EFun(list(node.params) + [wildcard_pattern()], node.body),
                           "add-param", "accept an extra argument"))
        out.append(_change(path, node, EFun([wildcard_pattern()] + list(node.params), node.body),
                           "add-param", "accept an extra leading argument"))
        # Drop a parameter.
        if len(node.params) >= 2:
            for i in range(len(node.params)):
                params = node.params[:i] + node.params[i + 1 :]
                out.append(_change(path, node, EFun(params, node.body), "drop-param",
                                   f"remove parameter {pretty_pattern(node.params[i])}"))
        return flat(out)

    # -- operators -----------------------------------------------------------

    def _binop_changes(self, node: EBinop, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        for alt in _OPERATOR_ALTERNATIVES.get(node.op, []):
            out.append(_change(path, node, EBinop(alt, node.left, node.right),
                               "swap-operator", f"use {alt} instead of {node.op}"))
        out.append(_change(path, node, EBinop(node.op, node.right, node.left),
                           "swap-operands", "swap the operands"))
        # "1 + x" inside string concatenation (or vice versa): try inserting
        # the standard conversion.  Pure language knowledge — "special cases
        # are encouraged rather than discouraged" (Section 2.2).
        if node.op == "^":
            for attr in ("left", "right"):
                side = getattr(node, attr)
                for conv in ("string_of_int", "string_of_float", "string_of_bool"):
                    wrapped = EApp(EVar(conv), [side])
                    replacement = (
                        EBinop(node.op, wrapped, node.right)
                        if attr == "left"
                        else EBinop(node.op, node.left, wrapped)
                    )
                    out.append(_change(path, node, replacement, "wrap-conversion",
                                       f"convert the {attr} operand with {conv}"))
        if node.op in ("+", "-", "*", "/"):
            for attr in ("left", "right"):
                side = getattr(node, attr)
                wrapped = EApp(EVar("int_of_string"), [side])
                replacement = (
                    EBinop(node.op, wrapped, node.right)
                    if attr == "left"
                    else EBinop(node.op, node.left, wrapped)
                )
                out.append(_change(path, node, replacement, "wrap-conversion",
                                   f"parse the {attr} operand with int_of_string"))
        # e1.fld := e2  =>  e1.fld <- e2    (Fig. 3: ref-update vs field-update)
        if node.op in (":=", "=") and isinstance(node.left, EFieldGet):
            replacement = EFieldSet(node.left.record, node.left.field_name, node.right)
            out.append(_change(path, node, replacement, "refupdate-to-fieldset",
                               f"update the record field with <- instead of {node.op}"))
        return flat(out)

    def _fieldset_changes(self, node: EFieldSet, path: Path) -> List[ChangeNode]:
        # e1.fld <- e2  =>  e1.fld := e2   (the field held a ref all along)
        getter = EFieldGet(node.record, node.field_name)
        return flat([
            _change(path, node, EBinop(":=", getter, node.value), "fieldset-to-refupdate",
                    "assign through a ref field with := instead of <-"),
        ])

    # -- data literals ---------------------------------------------------

    def _list_changes(self, node: EList, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        # [e1, e2, e3] (a 1-element list of a tuple) => [e1; e2; e3]
        if len(node.items) == 1 and isinstance(node.items[0], ETuple):
            out.append(_change(path, node, EList(list(node.items[0].items)),
                               "list-of-tuple-to-list",
                               "separate the list elements with ';' instead of ','"))
        if len(node.items) >= 2:
            out.append(_change(path, node, ETuple(list(node.items)), "list-to-tuple",
                               "use a tuple instead of a list"))
        return flat(out)

    def _tuple_changes(self, node: ETuple, path: Path) -> List[ChangeNode]:
        out: List[ChangeNode] = []
        items = node.items
        out.extend(flat([_change(path, node, EList(list(items)), "tuple-to-list",
                                 "use a list instead of a tuple")]))
        # Arity fixes.
        for i in range(len(items)):
            rest = items[:i] + items[i + 1 :]
            replacement: Expr = ETuple(rest) if len(rest) >= 2 else rest[0]
            out.extend(flat([_change(path, node, replacement, "drop-tuple-item",
                                     f"drop component {i + 1}")]))
        widened = ETuple(list(items) + [wildcard_expr()])
        out.extend(flat([_change(path, node, widened, "add-tuple-item",
                                 "add a component")]))
        if len(items) == 2:
            out.extend(flat([_change(path, node, ETuple([items[1], items[0]]),
                                     "permute-tuple", "swap the components")]))
        elif len(items) in (3, 4):
            out.append(self._tuple_permutation_probe(node, path))
        return out

    def _tuple_permutation_probe(self, node: ETuple, path: Path) -> ChangeNode:
        n = len(node.items)
        probe = _change(path, node, ETuple([wildcard_expr() for _ in range(n)]),
                        "permute-tuple", f"probe: any {n}-tuple", is_probe=True)

        def followups() -> List[ChangeNode]:
            changes = []
            for perm in itertools.permutations(range(n)):
                if perm == tuple(range(n)):
                    continue
                changes.append(_change(path, node, ETuple([node.items[i] for i in perm]),
                                       "permute-tuple", "reorder the components"))
            return flat(changes)

        return ChangeNode(probe, on_success=followups)

    def _cons_changes(self, node: ECons, path: Path) -> List[ChangeNode]:
        return flat([
            _change(path, node, ECons(node.tail, node.head), "swap-cons",
                    "swap the sides of ::"),
            _change(path, node, EBinop("@", node.head, node.tail), "cons-to-append",
                    "append with @ instead of consing"),
        ])

    # -- control -----------------------------------------------------------

    def _if_changes(self, node: EIf, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        if node.else_branch is None:
            out.append(_change(path, node, EIf(node.cond, node.then_branch, wildcard_expr()),
                               "add-else", "add an else branch"))
        else:
            out.append(_change(path, node, EIf(node.cond, node.then_branch, None),
                               "drop-else", "drop the else branch"))
        return flat(out)

    def _match_changes(self, node, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        cases = node.cases

        def rebuild(new_cases):
            if isinstance(node, EMatch):
                return EMatch(node.scrutinee, new_cases)
            return EFunction(new_cases)

        # Drop one arm.
        if len(cases) >= 2:
            for i in range(len(cases)):
                out.append(_change(path, node, rebuild(cases[:i] + cases[i + 1 :]),
                                   "drop-case",
                                   f"remove the {pretty_pattern(cases[i].pattern)} case"))
        # The converse of try-to-match: the arms were meant as exception
        # handlers (only sensible when the node has a scrutinee to protect).
        if isinstance(node, EMatch):
            out.append(_change(path, node, ETry(node.scrutinee, list(cases)),
                               "match-to-try",
                               "handle exceptions with try instead of matching"))
        # Reparenthesize nested matches (the paper's Fig. 7 performance bug):
        # trailing arms that lexically belong to an inner match (or vice
        # versa) due to the dangling-| ambiguity.
        for i, case in enumerate(cases):
            inner = case.body
            if isinstance(inner, (EMatch, EFunction)) and len(inner.cases) >= 2:
                if i < len(cases) - 1:
                    # Absorb the following outer arms into the inner match.
                    absorbed_inner = (
                        EMatch(inner.scrutinee, list(inner.cases) + list(cases[i + 1 :]))
                        if isinstance(inner, EMatch)
                        else EFunction(list(inner.cases) + list(cases[i + 1 :]))
                    )
                    new_case = MatchCase(case.pattern, absorbed_inner)
                    out.append(_change(path, node, rebuild(cases[:i] + [new_case]),
                                       "reparen-match",
                                       "move the following arms into the nested match"))
                # Lift the inner match's trailing arms out to this match.
                for k in range(1, len(inner.cases)):
                    kept_inner = (
                        EMatch(inner.scrutinee, list(inner.cases[:k]))
                        if isinstance(inner, EMatch)
                        else EFunction(list(inner.cases[:k]))
                    )
                    lifted = list(inner.cases[k:])
                    new_case = MatchCase(case.pattern, kept_inner)
                    out.append(_change(
                        path, node,
                        rebuild(cases[:i] + [new_case] + lifted + list(cases[i + 1 :])),
                        "reparen-match",
                        "move trailing arms of the nested match out to this match",
                    ))
        return flat(out)

    def _try_changes(self, node: ETry, path: Path) -> List[ChangeNode]:
        out: List[Change] = [
            # The handler is the problem: keep only the protected body.
            _change(path, node, node.body, "drop-handler",
                    "drop the exception handler"),
            # The student wrote ``try`` where a value match was meant.
            _change(path, node, EMatch(node.body, list(node.cases)), "try-to-match",
                    "match on the result instead of handling exceptions"),
        ]
        return flat(out)

    def _annot_changes(self, node: EAnnot, path: Path) -> List[ChangeNode]:
        # A stale/wrong annotation: drop it and let inference decide.
        return flat([
            _change(path, node, node.expr, "drop-annot",
                    "remove the (possibly stale) type annotation"),
        ])

    def _let_changes(self, node: ELet, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        if not node.rec and any(b.fun_name for b in node.bindings):
            out.append(_change(path, node, ELet(True, node.bindings, node.body),
                               "make-rec", "make the function recursive"))
        if node.rec:
            out.append(_change(path, node, ELet(False, node.bindings, node.body),
                               "drop-rec", "make the binding non-recursive"))
        return flat(out)

    def _dlet_changes(self, node: DLet, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        if not node.rec and any(b.fun_name for b in node.bindings):
            out.append(_change(path, node, DLet(True, node.bindings),
                               "make-rec", "make the function recursive"))
        if node.rec:
            out.append(_change(path, node, DLet(False, node.bindings),
                               "drop-rec", "make the binding non-recursive"))
        return flat(out)

    # -- variables ---------------------------------------------------------

    def _var_changes(self, node: EVar, path: Path) -> List[ChangeNode]:
        if "." in node.name:
            return []
        out = [
            _change(path, node, EVar(f"{module}.{node.name}"), "qualify-name",
                    f"qualify as {module}.{node.name}")
            for module in _QUALIFYING_MODULES
        ]
        return flat(out)

    # -- patterns ------------------------------------------------------------

    def _ptuple_changes(self, node: PTuple, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        items = node.items
        if len(items) == 2:
            out.append(_change(path, node, PTuple([items[1], items[0]]),
                               "permute-pattern", "swap the tuple components"))
        for i in range(len(items)):
            rest = items[:i] + items[i + 1 :]
            replacement: Pattern = PTuple(rest) if len(rest) >= 2 else rest[0]
            out.append(_change(path, node, replacement, "drop-pattern-item",
                               f"drop component {i + 1}"))
        out.append(_change(path, node, PTuple(list(items) + [wildcard_pattern()]),
                           "add-pattern-item", "match an extra component"))
        return flat(out)

    def _plist_changes(self, node: PList, path: Path) -> List[ChangeNode]:
        out: List[Change] = []
        if len(node.items) == 1 and isinstance(node.items[0], PTuple):
            out.append(_change(path, node, PList(list(node.items[0].items)),
                               "list-of-tuple-to-list",
                               "separate the pattern elements with ';' instead of ','"))
        return flat(out)

    def _pcons_changes(self, node: PCons, path: Path) -> List[ChangeNode]:
        return flat([
            _change(path, node, PCons(node.tail, node.head), "swap-cons",
                    "swap the sides of ::"),
        ])
