"""The ranker: ordering successful changes into an error-message list.

The paper found that "simple heuristics suffice" over principled metrics
like tree-edit distance.  The ordering implemented here is exactly the
lexicographic preference the paper describes:

1. non-triaged before triaged (Section 2.4: "the ranker prefers triaged
   solutions least of all");
2. by kind: constructive > adaptation > removal (Sections 2.2-2.3);
3. among triaged solutions, fewer removed siblings first;
4. smaller changed expressions first — EXCEPT adaptation, which prefers
   *larger* expressions (Section 2.3: the inversion is "necessary for our
   example");
5. deeper in the tree first ("prefers changes closer to the leaves");
6. the right-hand expression of an application first ("a heuristic for
   preferring the expression on the right in a function application").

Duplicates (same location, same printed replacement) are merged first.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.miniml.pretty import pretty
from repro.tree import node_size, walk

from .changes import KIND_ADAPT, KIND_CONSTRUCTIVE, KIND_REMOVE, Suggestion

_KIND_ORDER = {KIND_CONSTRUCTIVE: 0, KIND_ADAPT: 1, KIND_REMOVE: 2}

#: Tiebreak among constructive rules: prefer syntax-confusion fixes and
#: rearrangements (which preserve all code) over changes that add holes or
#: drop code.  This encodes the same intuition as the paper's preference
#: for "a constructive change that concisely summarizes the reason the
#: program does not type-check".
_RULE_PRIORITY = {
    "curry-params": 0,
    "untuple-args": 0,
    "list-of-tuple-to-list": 0,
    "refupdate-to-fieldset": 0,
    "fieldset-to-refupdate": 0,
    "make-rec": 0,
    "try-to-match": 0,
    "match-to-try": 0,
    "drop-annot": 1,
    "permute-args": 1,
    "permute-tuple": 1,
    "permute-pattern": 1,
    "swap-operands": 1,
    "swap-operator": 1,
    "swap-cons": 1,
    "qualify-name": 1,
    "wrap-conversion": 1,
    "swap-print-fn": 1,
    "insert-arg": 2,
    "add-param": 2,
    "add-tuple-item": 2,
    "add-pattern-item": 2,
    "add-else": 2,
    "tuple-args": 3,
    "tuple-params": 3,
    "nest-call": 3,
    "list-to-tuple": 3,
    "tuple-to-list": 3,
    "cons-to-append": 3,
    "reparen-match": 3,
    "drop-arg": 4,
    "drop-param": 4,
    "drop-tuple-item": 4,
    "drop-case": 4,
    "drop-pattern-item": 4,
    "drop-else": 4,
    "drop-rec": 4,
    "drop-handler": 4,
}
_DEFAULT_RULE_PRIORITY = 2


def _loss_and_wildcards(s: Suggestion) -> Tuple[int, int]:
    """How much original code the change throws away, and how many holes
    it introduces.  Swapping two arguments loses nothing; dropping an
    argument loses its subtree; inserting ``[[...]]`` adds a hole.  This is
    the cheap stand-in for the tree-edit-distance metrics the paper
    experimented with before settling on heuristics.
    """
    original_ids = {id(n) for _, n in walk(s.change.original)}
    reused = 0
    wildcards = 0
    for _, n in walk(s.change.replacement):
        if id(n) in original_ids:
            reused += 1
        if n.synthetic:
            wildcards += 1
    return max(0, len(original_ids) - reused), wildcards


def _last_index(path) -> int:
    """Sibling position of the change (for the right-argument heuristic)."""
    for step in reversed(path):
        if isinstance(step, tuple):
            return step[1]
    return 0


def rank_key(s: Suggestion, adapt_prefers_larger: bool = True) -> Tuple:
    kind = _KIND_ORDER.get(s.kind, 3)
    size = node_size(s.change.original)
    if s.kind == KIND_ADAPT and adapt_prefers_larger:
        size = -size  # prefer adapting *larger* expressions (Section 2.3)
    loss, wildcards = _loss_and_wildcards(s)
    # Loss ranks before size: a change that preserves all the original code
    # (adding ``rec``, swapping arguments) beats a smaller change that
    # deletes code (dropping a match arm), regardless of the subtree sizes.
    return (
        1 if s.triaged else 0,
        kind,
        len(s.removed_paths),
        loss,
        wildcards,
        size,
        _RULE_PRIORITY.get(s.change.rule, _DEFAULT_RULE_PRIORITY),
        -len(s.change.path),
        -_last_index(s.change.path),
    )


def dedupe(suggestions: List[Suggestion]) -> List[Suggestion]:
    """Merge suggestions proposing the identical rewrite at one location."""
    seen = {}
    for s in suggestions:
        key = (s.change.path, s.kind, pretty(s.change.replacement), s.triaged)
        prior = seen.get(key)
        if prior is None or rank_key(s) < rank_key(prior):
            seen[key] = s
    return list(seen.values())


def rank(
    suggestions: List[Suggestion], adapt_prefers_larger: bool = True
) -> List[Suggestion]:
    """Deduplicate and order suggestions, best first.

    ``adapt_prefers_larger=False`` disables the Section 2.3 size inversion
    for adaptations — the A3 ablation, which demonstrably ruins the
    ``if e1 e2 then ...`` example.
    """
    return sorted(
        dedupe(suggestions),
        key=lambda s: rank_key(s, adapt_prefers_larger=adapt_prefers_larger),
    )
