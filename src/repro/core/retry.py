"""Generic retry with deterministic, jitter-free exponential backoff.

The resilience layer treats transient infrastructure failures — a store
segment read hitting a momentary ``OSError``, an atomic publish racing a
filesystem hiccup — as *retryable*, not fatal.  This module is the one
place that policy lives: a frozen :class:`RetryPolicy` (attempt budget,
backoff curve, retryable-exception allowlist) plus two entry points, the
functional :func:`with_retry` and the decorator :func:`retry`.

Backoff is deliberately jitter-free: the whole pipeline promises
byte-identical results run-to-run, and randomised sleeps would make fault
-injection tests (``repro.faults``) timing-dependent.  Callers that need
testable timing inject ``sleep`` (the same pattern as ``Deadline``'s
injectable clock).

Stdlib-only by design: ``repro.store.verdicts`` imports this lazily to
avoid the ``repro.core`` <-> ``repro.store`` package cycle, so this module
must never import back into the package tree.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")

#: Signature of the optional per-retry observer: ``(attempt, error)`` where
#: ``attempt`` is the 1-based count of failures so far.
OnRetry = Callable[[int, BaseException], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, how long to wait between tries, and for what.

    ``attempts`` is the *total* number of tries (so ``attempts=1`` means
    "no retries").  The delay before retry *n* (1-based) is
    ``backoff_seconds * multiplier**(n-1)`` capped at
    ``max_backoff_seconds`` — deterministic on purpose; see module
    docstring.  Only exceptions matching ``retryable`` are retried; any
    other exception propagates immediately.
    """

    attempts: int = 3
    backoff_seconds: float = 0.01
    multiplier: float = 2.0
    max_backoff_seconds: float = 0.25
    retryable: Tuple[Type[BaseException], ...] = field(default=(OSError,))

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff_seconds < 0:
            raise ValueError(
                "max_backoff_seconds must be >= 0, "
                f"got {self.max_backoff_seconds}"
            )
        if not self.retryable:
            raise ValueError("retryable must name at least one exception type")

    def delay_for(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = self.backoff_seconds * (self.multiplier ** (attempt - 1))
        return min(delay, self.max_backoff_seconds)


#: Module default: three tries, 10ms/20ms between them, OSError only.
DEFAULT_RETRY_POLICY = RetryPolicy()


def with_retry(
    fn: Callable[..., T],
    policy: Optional[RetryPolicy] = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[OnRetry] = None,
) -> Callable[..., T]:
    """Wrap ``fn`` so retryable exceptions are re-attempted per ``policy``.

    On exhaustion the *last* exception is re-raised unchanged, so callers'
    existing ``except OSError`` degradation paths keep working — retry
    narrows the window for transient failures without changing the
    contract for persistent ones.
    """
    pol = policy if policy is not None else DEFAULT_RETRY_POLICY

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        failures = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except pol.retryable as err:
                failures += 1
                if failures >= pol.attempts:
                    raise
                if on_retry is not None:
                    on_retry(failures, err)
                sleep(pol.delay_for(failures))

    return wrapper


def retry(
    policy: Optional[RetryPolicy] = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[OnRetry] = None,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`with_retry`.

    ::

        @retry(RetryPolicy(attempts=5))
        def read_segment(path): ...
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        return with_retry(fn, policy, sleep=sleep, on_retry=on_retry)

    return decorate
