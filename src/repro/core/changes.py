"""Change objects: what the enumerator proposes and the searcher tries.

A :class:`Change` is "replace the subtree at ``path`` with ``replacement``".
Changes form *structured, lazy collections* (Section 2.2, "More Efficient
Search"): a :class:`ChangeNode` can carry follow-up thunks that are expanded
only when the probe succeeds or fails — e.g. try ``(raise Foo, raise Foo,
raise Foo)`` first, and enumerate argument permutations only if *some*
3-tuple fits.  The laziness both avoids building syntax and avoids oracle
calls, which is the paper's stated motivation.

A :class:`Suggestion` is a change that the oracle accepted, plus everything
message rendering needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, List, Optional, Sequence

from repro.tree import Node, Path

#: Change categories, used by the ranker's lexicographic preference
#: (Section 2.3: constructive > adaptation > removal; Section 2.4: triaged
#: solutions least of all).
KIND_CONSTRUCTIVE = "constructive"
KIND_ADAPT = "adapt"
KIND_REMOVE = "remove"


@dataclass(eq=False)
class Change:
    """One candidate rewrite of the program."""

    path: Path
    original: Node
    replacement: Node
    kind: str
    description: str
    #: Probe changes gate follow-ups but are never reported as suggestions
    #: (e.g. the all-wildcards tuple that guards permutation attempts).
    is_probe: bool = False
    #: Stable tag naming the constructive-change rule that produced this
    #: (e.g. ``"curry-params"``); used by tests, grading, and ablations.
    rule: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Change({self.rule or self.kind}: {self.description})"


#: Lazily produced follow-up changes.
Followups = Callable[[], List["ChangeNode"]]


@dataclass(eq=False)
class ChangeNode:
    """A change plus what to try depending on its outcome."""

    change: Change
    on_success: Optional[Followups] = None
    on_failure: Optional[Followups] = None


def flat(changes: Sequence[Change]) -> List[ChangeNode]:
    """Wrap plain changes with no follow-ups."""
    return [ChangeNode(c) for c in changes]


@dataclass(eq=False)
class Suggestion:
    """A change the oracle accepted: the basis of one error message."""

    change: Change
    #: The complete rewritten program that type-checks.
    program: Node
    #: Rendered type of the replacement in the fixed program ("of type ...").
    new_type: Optional[str] = None
    #: True when this suggestion was found in triage mode (other parts of
    #: the program were wildcarded away to isolate this error).
    triaged: bool = False
    #: Paths (in the original program) of sibling subtrees triage removed.
    removed_paths: List[Path] = dataclass_field(default_factory=list)
    #: Presentation flag: removal succeeded but adaptation failed on a
    #: variable, so the variable is unbound (Section 3.3's print scenario).
    unbound_variable: Optional[str] = None

    @property
    def kind(self) -> str:
        return self.change.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = " [triaged]" if self.triaged else ""
        return f"Suggestion({self.change!r}{extra})"
