"""Quick fixes: applying suggestions back to source text.

The paper's C++ prototype surfaced suggestions as Eclipse *quick fixes*
("a marker in the user interface that brings up a menu item, such as,
replace this expression by wrapping it in ptr_fun"), and its Section 6
future work asks for IDE integration.  This module is that layer for
MiniML: a suggestion knows the source span of the expression it rewrites,
so applying it is a textual splice that preserves all surrounding
formatting and comments.

:func:`apply_suggestion` splices one fix and *verifies* the result (it must
parse; for non-triaged suggestions it must also type-check) — falling back
to pretty-printing the whole fixed program if the splice cannot be
validated.  :func:`fix_all` iterates "apply the top suggestion, recompile"
until the program type-checks, which is exactly the workflow the paper
assumes programmers follow ("we expect programmers will often fix one error
and recompile").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.miniml.parser import ParseError, parse_program
from repro.miniml.pretty import pretty, pretty_program
from repro.miniml.infer import typecheck_source
from repro.tree import Node, walk

from .changes import KIND_ADAPT, Suggestion
from .seminal import ExplainResult, explain


def is_appliable(suggestion: Suggestion) -> bool:
    """Whether a suggestion denotes a concrete patch.

    Adaptations are advice ("change how the result is used"), not a
    rewrite — their replacement prints identically to the original — so
    they cannot be applied mechanically.
    """
    return suggestion.kind != KIND_ADAPT


def _source_text(node: Node) -> str:
    """Concrete syntax for splicing: synthetic wildcards print as the real
    ``raise Foo`` they are (the ``[[...]]`` display form is not code)."""
    flagged = [n for _, n in walk(node) if n.synthetic]
    for n in flagged:
        n.synthetic = False
    try:
        return pretty(node)
    finally:
        for n in flagged:
            n.synthetic = True


@dataclass
class AppliedFix:
    """Outcome of applying one suggestion to source text."""

    source: str
    #: True when the span splice worked; False when we had to fall back to
    #: re-printing the entire program (formatting is lost in that case).
    spliced: bool
    description: str


def apply_suggestion(source: str, suggestion: Suggestion) -> AppliedFix:
    """Apply ``suggestion`` to ``source``, returning the patched text.

    The splice targets the original expression's span.  The result is
    validated by re-parsing (and type-checking, unless the suggestion is
    triaged — triaged fixes intentionally leave other errors in place).
    """
    change = suggestion.change
    replacement_text = _source_text(change.replacement)
    description = f"replace `{pretty(change.original)}' with `{replacement_text}'"
    span = change.original.span
    if span is not None and 0 <= span.start_offset < span.end_offset <= len(source):
        # Try the plain splice, then a parenthesized one (the replacement
        # may bind looser than the slot the original occupied).
        for text in (replacement_text, f"({replacement_text})"):
            patched = source[: span.start_offset] + text + source[span.end_offset :]
            if _valid(patched, require_typecheck=not suggestion.triaged):
                return AppliedFix(patched, spliced=True, description=description)
    # Fallback: print the whole fixed program (loses comments/layout).
    fallback = _source_text(suggestion.program)
    if not fallback.endswith("\n"):
        fallback += "\n"
    return AppliedFix(fallback, spliced=False, description=description)


def _valid(source: str, require_typecheck: bool) -> bool:
    try:
        parse_program(source)
    except Exception:
        return False
    if not require_typecheck:
        return True
    return typecheck_source(source).ok


@dataclass
class FixAllResult:
    """Outcome of the iterative fix loop."""

    source: str
    ok: bool
    rounds: int
    applied: List[str] = field(default_factory=list)
    #: The final explain result (for inspection when not ``ok``).
    last: Optional[ExplainResult] = None


def fix_all(
    source: str,
    max_rounds: int = 10,
    **explain_kwargs,
) -> FixAllResult:
    """Repeatedly apply the top-ranked suggestion until the program
    type-checks (or no progress can be made).

    This models the fix-one-error-and-recompile loop; triage makes it
    converge on multi-error programs because each round repairs one
    isolated error.
    """
    current = source
    applied: List[str] = []
    last: Optional[ExplainResult] = None
    for round_index in range(max_rounds):
        last = explain(current, **explain_kwargs)
        if last.ok:
            return FixAllResult(current, ok=True, rounds=round_index, applied=applied, last=last)
        progressed = False
        # Take the best *appliable* suggestion that makes textual progress
        # (adaptations are advice, not patches — skip them here).
        for suggestion in last.suggestions:
            if not is_appliable(suggestion):
                continue
            fix = apply_suggestion(current, suggestion)
            if fix.source != current:
                applied.append(fix.description)
                current = fix.source
                progressed = True
                break
        if not progressed:
            break  # no textual progress; avoid a livelock
    final = explain(current, **explain_kwargs)
    return FixAllResult(
        current, ok=final.ok, rounds=len(applied), applied=applied, last=final
    )
