"""The searcher: SEMINAL's top-down search procedure (Sections 2.1-2.3).

Given an ill-typed program, the searcher:

1. tests increasingly long prefixes of the top-level definitions to localize
   the first failing definition (Section 2.1),
2. descends recursively from that definition, using *removal* (replacement
   by the ``raise Foo`` wildcard) to find the smallest subtrees whose removal
   makes the program type-check,
3. at every removal-successful node, additionally tries the enumerator's
   *constructive changes* (Section 2.2) and *adaptation to context*
   (Section 2.3),
4. when the only result for a sizable subtree is removing it wholesale,
   switches to *triage* mode (Section 2.4, :mod:`repro.core.triage`) to
   isolate one of several independent errors.

The searcher knows nothing about MiniML's type system: every decision is a
boolean oracle answer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.miniml.ast_nodes import (
    Binding,
    DExpr,
    DLet,
    Decl,
    EVar,
    Expr,
    Pattern,
    Program,
)
from repro.miniml.errors import MiniMLTypeError
from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_TRACER, format_path
from repro.tree import Node, Path, StructuralKeyer, get_at, node_size, replace_at

from .changes import (
    KIND_ADAPT,
    KIND_REMOVE,
    Change,
    ChangeNode,
    Suggestion,
)
from .enumerator import (
    MiniMLEnumerator,
    adapt_expr,
    is_searchable,
    wildcard_expr,
    wildcard_for,
)
from .oracle import BudgetExceeded, Oracle
from .parallel import WorkerPool, resolve_jobs
from .resilience import (
    Deadline,
    DeadlineExceeded,
    DegradationReport,
    REASON_BUDGET,
    REASON_CRASH,
    REASON_DEADLINE,
    REASON_FALLBACK,
    RestartPolicy,
)


@dataclass
class SearchConfig:
    """Tunables for the search procedure.

    ``triage_threshold`` is the paper's "nontrivial number of descendants":
    a subtree smaller than this is simply reported as removable rather than
    triaged.  ``max_triage_depth`` bounds nested triage.
    ``disabled_rules`` feeds the enumerator (ablation studies).
    """

    max_oracle_calls: Optional[int] = 20000
    #: Wall-clock budget for the whole search (None = unlimited).  Checked
    #: in :meth:`Searcher._tick` before every oracle test; exhaustion never
    #: escapes ``explain()`` — the outcome carries the best-so-far
    #: suggestions plus a :class:`~repro.core.resilience.DegradationReport`.
    deadline_seconds: Optional[float] = None
    #: Fraction of the deadline after which the searcher sheds its
    #: expensive optional phases (constructive changes, adaptation,
    #: triage) to protect the removal results already in hand.
    shed_fraction: float = 0.85
    enable_triage: bool = True
    enable_adaptation: bool = True
    #: Arm the oracle's prefix snapshot after localization so candidates
    #: (which only ever mutate the failing declaration) skip re-inferring
    #: the passing prefix.  Answer-preserving; off = from-scratch per call.
    incremental: bool = True
    #: Arm the oracle's declaration outcome table before the initial check
    #: (the second reuse tier, behind prefix snapshots): full-path checks —
    #: chiefly the O(n²) localization prefixes — replay recorded schemes
    #: for unaffected declarations and really re-infer only changed ones
    #: and their dependents.  Answer-preserving by construction (replays
    #: are fingerprint-verified and degrade to real checks); requires
    #: ``incremental``.
    depprune: bool = True
    #: Trail-based speculative inference (the third reuse tier, in front
    #: of the copying prefix path): candidates are checked against the
    #: *live* armed environment and every destructive write is rolled
    #: back via an undo trail, skipping the per-check table/value copies
    #: entirely.  Answer-preserving (any trail-integrity violation
    #: degrades to the copying path); requires ``incremental``.
    speculate: bool = True
    triage_threshold: int = 5
    max_triage_depth: int = 3
    disabled_rules: Sequence[str] = ()
    #: Sibling-removal strategy for triage contexts (Section 2.4 discusses
    #: the design space): "greedy" is the paper's cumulative one-at-a-time
    #: middle road, "remove-all" wildcards every other sibling at once,
    #: "exhaustive" searches minimal subsets (exponential; bounded).
    triage_strategy: str = "greedy"
    #: Eager (non-lazy) change enumeration — the A1 ablation strawman.
    eager_enumeration: bool = False
    #: User-supplied change generators (the Section 6 open framework).
    custom_rules: Sequence = ()
    #: Candidate-checking parallelism for the enumeration phase: ``1``
    #: (default) is the exact serial code path, an int is that many worker
    #: processes, ``"auto"`` is one per CPU.  Verdicts are applied in
    #: enumeration order, so serial and parallel runs produce byte-identical
    #: suggestions and ranks (see :mod:`repro.core.parallel`).
    jobs: Union[int, str, None] = 1
    #: Candidates drained from the worklist per pool round (None = the
    #: pool's default, ``max(16, 8 * jobs)``).
    parallel_batch_size: Optional[int] = None
    #: Skip the oracle call for candidates whose structural key was already
    #: tested in this ``search_program`` run, replaying the memoized
    #: verdict instead — suggestions are unchanged by construction; only
    #: duplicate checks are saved (``search.dedup_skipped``).
    dedup: bool = True
    #: Seed pool workers with a :class:`repro.faults.FaultPlan` (workers
    #: then run a ``ChaosOracle``) — the fault-injection route the chaos
    #: tests use.  Defaults to the parent oracle's own plan when the
    #: parent is itself a ``ChaosOracle``.
    worker_fault_plan: Optional[object] = None
    #: Worker-pool supervision knobs (restart backoff, circuit breaker,
    #: bisection/quarantine budgets); ``None`` uses
    #: :class:`~repro.core.resilience.RestartPolicy` defaults.
    supervision: Optional[RestartPolicy] = None
    #: Per-candidate wall-clock watchdog for pool workers (seconds; None =
    #: off).  A check that exceeds it is converted to a clean crash
    #: verdict worker-side — this can change answers vs. serial, so it is
    #: strictly opt-in.
    candidate_timeout_seconds: Optional[float] = None
    #: Per-worker RSS ceiling in MiB (None = off).  A worker that crosses
    #: it after a check converts that check to a crash verdict and the
    #: pool recycles its processes.  Opt-in, same caveat as above.
    worker_rss_limit_mb: Optional[float] = None

    def __post_init__(self) -> None:
        if not (0.0 < self.shed_fraction <= 1.0):
            raise ValueError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction!r}"
            )

    @property
    def soft_deadline_fraction(self) -> float:
        """Backward-compatible alias for :attr:`shed_fraction` (the knob's
        pre-supervision name)."""
        return self.shed_fraction


@dataclass
class SearchStats:
    """Where the oracle calls went (the paper's efficiency story, itemized).

    Section 2.2 motivates lazy change collections by oracle-call cost; this
    breakdown shows which search phase spends them on a given file.
    """

    prefix_tests: int = 0
    removal_tests: int = 0
    constructive_tests: int = 0
    adaptation_tests: int = 0
    triage_tests: int = 0
    #: Candidates whose verdict was replayed from the per-search dedup
    #: memo instead of spending an oracle call (not counted in any of the
    #: per-phase test counters above).
    dedup_skipped: int = 0
    rule_successes: Dict[str, int] = field(default_factory=dict)

    def record_success(self, rule: str) -> None:
        key = rule or "(removal/adapt)"
        self.rule_successes[key] = self.rule_successes.get(key, 0) + 1

    def summary(self) -> str:
        parts = [
            f"prefix={self.prefix_tests}",
            f"removal={self.removal_tests}",
            f"constructive={self.constructive_tests}",
            f"adaptation={self.adaptation_tests}",
            f"triage={self.triage_tests}",
        ]
        line = "oracle calls by phase: " + " ".join(parts)
        if self.dedup_skipped:
            line += f"\nduplicate candidates skipped: {self.dedup_skipped}"
        if self.rule_successes:
            winners = ", ".join(
                f"{name}x{count}"
                for name, count in sorted(self.rule_successes.items(), key=lambda kv: -kv[1])
            )
            line += f"\nsuccessful changes: {winners}"
        return line


@dataclass
class SearchOutcome:
    """Everything the search learned about one ill-typed program."""

    ok: bool
    program: Program
    checker_error: Optional[MiniMLTypeError] = None
    suggestions: List[Suggestion] = field(default_factory=list)
    bad_decl_index: Optional[int] = None
    oracle_calls: int = 0
    budget_exhausted: bool = False
    stats: SearchStats = field(default_factory=SearchStats)
    #: What (if anything) the search gave up: reasons, crash counts,
    #: shed phases, elapsed wall clock.  Always present after a search.
    degradation: DegradationReport = field(default_factory=DegradationReport)


class Searcher:
    """Drives the change worklist against the oracle (paper Figure 1).

    ``tracer``/``metrics`` are the profiling hooks: spans are emitted for
    every search phase (``localize``, ``descend``, ``enumerate``, ``adapt``,
    and — via :mod:`repro.core.triage` — ``triage``), each carrying the AST
    path, node size, and oracle calls consumed.  The defaults are the
    shared null objects, which keep the hot path allocation-free.
    """

    def __init__(
        self,
        oracle: Optional[Oracle] = None,
        enumerator: Optional[MiniMLEnumerator] = None,
        config: Optional[SearchConfig] = None,
        tracer=None,
        metrics=None,
        events=None,
    ):
        self.config = config or SearchConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.events = events if events is not None else NULL_EVENTS
        self.oracle = oracle or Oracle(
            max_calls=self.config.max_oracle_calls,
            metrics=self.metrics,
            speculate=self.config.speculate,
        )
        # Adopt a caller-supplied oracle into this search's registry unless
        # it was already wired to one of its own (same for the event log).
        if self.metrics is not NULL_METRICS and self.oracle.metrics is NULL_METRICS:
            self.oracle.metrics = self.metrics
        if self.events is not NULL_EVENTS and getattr(
            self.oracle, "events", NULL_EVENTS
        ) is NULL_EVENTS:
            self.oracle.events = self.events
        self.enumerator = enumerator or MiniMLEnumerator(
            self.config.disabled_rules,
            eager=self.config.eager_enumeration,
            custom_rules=self.config.custom_rules,
            metrics=self.metrics,
        )
        if self.metrics is not NULL_METRICS and self.enumerator.metrics is NULL_METRICS:
            self.enumerator.metrics = self.metrics
        self.stats = SearchStats()
        self.degradation = DegradationReport()
        self._deadline: Optional[Deadline] = None
        #: Per-search parallel state (see :mod:`repro.core.parallel`): the
        #: worker pool (None on the serial path), the declarations every
        #: candidate shares with the armed prefix, and the dedup memo
        #: mapping candidate structural keys to verdicts.
        self._pool: Optional[WorkerPool] = None
        self._prefix_decls: Tuple = ()
        #: One structural keyer per search: the dedup memo, the oracle's
        #: cache/store keys, and the declaration outcome table all intern
        #: subtree keys into this single identity memo
        #: (``search.keys.interned``), instead of each call site paying to
        #: rebuild keys for the same shared subtrees.
        self._keyer = StructuralKeyer()
        self.oracle.adopt_keyer(self._keyer)
        self._dedup_keyer: Optional[StructuralKeyer] = (
            self._keyer if self.config.dedup else None
        )
        self._tested: Dict[object, bool] = {}

    def _tick(self, phase: str) -> None:
        """Count one oracle test against a phase, in both sinks.

        Doubles as the deadline checkpoint: every oracle test passes
        through here, so the wall-clock budget is enforced with call-level
        granularity alongside the oracle-call budget.
        """
        setattr(self.stats, phase, getattr(self.stats, phase) + 1)
        self.metrics.incr("search." + phase)
        deadline = self._deadline
        if deadline is not None and deadline.expired():
            raise DeadlineExceeded(deadline.seconds, deadline.elapsed())

    def _shed(self, phase: str) -> bool:
        """Whether the soft deadline says to skip one unit of ``phase``.

        Past ``soft_deadline_fraction`` of the wall-clock budget the
        search keeps its cheap removal descent but sheds the expensive
        optional phases, so the hard deadline lands on a search that has
        already banked its best-effort answers.
        """
        deadline = self._deadline
        if deadline is None or not deadline.soft_expired():
            return False
        self.degradation.note_shed(phase)
        self.metrics.incr("search.shed." + phase)
        return True

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def search_program(self, program: Program) -> SearchOutcome:
        """Search for changes that make ``program`` type-check.

        Best-effort by contract: budget or deadline exhaustion (and any
        isolated oracle crash) never raises out of here — the outcome
        carries whatever suggestions were found plus a
        :class:`~repro.core.resilience.DegradationReport` saying what was
        given up.
        """
        self.oracle.reset()
        self.stats = SearchStats()
        self._tested = {}
        self._keyer.clear()
        report = DegradationReport(
            budget=self.config.max_oracle_calls,
            deadline_seconds=self.config.deadline_seconds,
        )
        report.attach_events(self.events)
        self.degradation = report
        self._deadline = Deadline(
            self.config.deadline_seconds, self.config.shed_fraction
        )
        if resolve_jobs(self.config.jobs) > 1:
            # One pool per search; worker processes spawn lazily on the
            # first batch, so pools that never see one cost nothing.
            self._pool = WorkerPool(
                self.config.jobs,
                batch_size=self.config.parallel_batch_size,
                metrics=self.metrics,
                tracer=self.tracer,
                events=self.events,
                supervision=self.config.supervision,
                candidate_timeout=self.config.candidate_timeout_seconds,
                rss_limit_mb=self.config.worker_rss_limit_mb,
            )
        with self.tracer.span("search", decls=len(program.decls)) as sp:
            outcome = SearchOutcome(ok=False, program=program, degradation=report)
            try:
                # Arm the declaration outcome table *before* the initial
                # check: recording piggybacks on that check's full pass, so
                # every later full-path check (localization prefixes above
                # all) replays unaffected declarations instead of
                # re-inferring them.
                if self.config.depprune and self.config.incremental:
                    self.oracle.arm_decl_table(program)
                first = self.oracle.check(program)
                if first.ok:
                    outcome.ok = True
                else:
                    outcome.checker_error = first.error
                    bad = self._localize_bad_decl(program)
                    outcome.bad_decl_index = bad
                    # Everything before the failing declaration passed, and
                    # every candidate below only mutates that declaration — so
                    # snapshot the prefix environment once and let the oracle
                    # check candidates incrementally from there.
                    if self.config.incremental:
                        self.oracle.arm_prefix(program, bad)
                    self._prefix_decls = tuple(program.decls[:bad])
                    if self._pool is not None:
                        store = getattr(self.oracle, "store", None)
                        self._pool.arm(
                            self._prefix_decls,
                            incremental=self.config.incremental,
                            max_depth=self.oracle.max_depth,
                            fault_plan=self.config.worker_fault_plan
                            or getattr(self.oracle, "plan", None),
                            store_path=str(store.path) if store is not None else None,
                            depprune=self.config.depprune,
                            table_decls=tuple(program.decls[: bad + 1])
                            if self.config.depprune and self.config.incremental
                            else None,
                            speculate=getattr(self.oracle, "speculate", True),
                        )
                    # Search within the failing prefix: later declarations are
                    # ignored entirely, as in the paper ("It does not examine
                    # the third top-level binding").
                    prefix = Program(program.decls[: bad + 1])
                    outcome.suggestions = self._search_decl(prefix, (("decls", bad),))
            except BudgetExceeded:
                outcome.budget_exhausted = True
                report.note(REASON_BUDGET)
            except DeadlineExceeded:
                report.note(REASON_DEADLINE)
            finally:
                if self._pool is not None:
                    self._pool.shutdown()
            outcome.oracle_calls = self.oracle.calls
            outcome.stats = self.stats
            self._finalize_degradation(report)
            interned = self._keyer.interned
            if interned:
                self.metrics.incr("search.keys.interned", interned)
            self._pool = None
            if not outcome.ok:
                self.metrics.incr("search.suggestions", len(outcome.suggestions))
            sp.set("oracle_calls", self.oracle.calls)
            sp.set("suggestions", len(outcome.suggestions))
            return outcome

    def _finalize_degradation(self, report: DegradationReport) -> None:
        """Fold the oracle's resilience accounting into the search report."""
        oracle = self.oracle
        report.oracle_crashes = getattr(oracle, "crashes", 0)
        report.prefix_fallbacks = getattr(oracle, "prefix_fallbacks", 0)
        report.depth_rejections = getattr(oracle, "depth_rejections", 0)
        report.crash_samples = list(getattr(oracle, "crash_samples", ()))
        if self._pool is not None:
            report.worker_crashes = self._pool.worker_crashes
            report.worker_restarts = self._pool.restarts
            report.quarantined = self._pool.quarantined
            report.watchdog_kills = (
                self._pool.watchdog_timeouts + self._pool.watchdog_rss
            )
        if report.oracle_crashes or report.depth_rejections or report.worker_crashes:
            report.note(REASON_CRASH)
        if report.prefix_fallbacks:
            report.note(REASON_FALLBACK)
        if self._deadline is not None:
            report.elapsed_seconds = self._deadline.elapsed()
        if report.degraded:
            self.metrics.incr("search.degraded")

    def _localize_bad_decl(self, program: Program) -> int:
        """Index of the first top-level declaration whose prefix fails.

        Precondition: the whole program is known to fail (``search_program``
        checked it).  The final prefix *is* the whole program, so when every
        proper prefix passes the answer must be the last declaration — no
        oracle call needed to re-confirm the failure we started from.
        """
        with self.tracer.span("localize", decls=len(program.decls)) as sp:
            calls_before = self.oracle.calls
            last = len(program.decls) - 1
            for i in range(last):
                self._tick("prefix_tests")
                if not self.oracle.passes(Program(program.decls[: i + 1])):
                    sp.set("bad_decl", i)
                    sp.set("oracle_calls", self.oracle.calls - calls_before)
                    return i
            sp.set("bad_decl", last)
            sp.set("oracle_calls", self.oracle.calls - calls_before)
            return last

    # ------------------------------------------------------------------
    # Declaration-level search
    # ------------------------------------------------------------------

    def _search_decl(self, root: Program, decl_path: Path) -> List[Suggestion]:
        decl = get_at(root, decl_path)
        results: List[Suggestion] = []
        # Declaration-level constructive changes (e.g. ``make-rec``).
        results.extend(self._try_changes(root, decl_path, decl))
        # Recurse into the searchable roots of the declaration.
        for sub_path in self._searchable_children(root, decl_path):
            target = get_at(root, sub_path)
            wildcard = wildcard_for(target)
            if wildcard is None:
                continue
            self._tick("removal_tests")
            if self._passes(replace_at(root, sub_path, wildcard)):
                results.extend(self._search(root, sub_path, triage_depth=0))
        return results

    # ------------------------------------------------------------------
    # Regular-mode recursive search
    # ------------------------------------------------------------------

    def _search(self, root: Program, path: Path, triage_depth: int) -> List[Suggestion]:
        """Search below ``path``.

        Precondition: replacing the node at ``path`` with a wildcard makes
        ``root`` type-check.
        """
        node = get_at(root, path)
        # Expensive span labels (pretty path, subtree size) are computed only
        # when a real tracer is listening.
        if self.tracer.enabled:
            span = self.tracer.span(
                "descend",
                path=format_path(path),
                size=node_size(node),
                depth=triage_depth,
            )
        else:
            span = self.tracer.span("descend")
        with span as sp:
            calls_before = self.oracle.calls
            results = self._search_below(root, path, node, triage_depth)
            sp.set("oracle_calls", self.oracle.calls - calls_before)
            return results

    def _search_below(
        self, root: Program, path: Path, node: Node, triage_depth: int
    ) -> List[Suggestion]:
        results: List[Suggestion] = []

        # 1. Find children whose lone removal also fixes the program.
        child_fixes: List[Path] = []
        for child_path in self._searchable_children(root, path):
            child = get_at(root, child_path)
            wildcard = wildcard_for(child)
            if wildcard is None:
                continue
            self._tick("removal_tests")
            if self._passes(replace_at(root, child_path, wildcard)):
                child_fixes.append(child_path)

        # 2. Recurse into each fixing child: the error is localizable deeper.
        for child_path in child_fixes:
            results.extend(self._search(root, child_path, triage_depth))

        # 3. Constructive changes at this node (shed past the soft deadline:
        #    the removal results above are the cheap, already-banked core).
        if not self._shed("constructive"):
            constructive = self._try_changes(root, path, node)
            results.extend(constructive)

        # 4. Adaptation to context (expressions only).  Build the adapted
        #    expression once: the replacement reported in the Change must be
        #    the very object the oracle tested, not a second wrapping.
        if (
            self.config.enable_adaptation
            and isinstance(node, Expr)
            and not self._shed("adaptation")
        ):
            adapted_node = adapt_expr(node)
            adapted = replace_at(root, path, adapted_node)
            self._tick("adaptation_tests")
            if self.tracer.enabled:
                span = self.tracer.span("adapt", path=format_path(path))
            else:
                span = self.tracer.span("adapt")
            with span as sp:
                fits = self._passes(adapted)
                sp.set("fits", fits)
            if fits:
                change = Change(
                    path=path,
                    original=node,
                    replacement=adapted_node,
                    kind=KIND_ADAPT,
                    description="the expression is well-typed on its own; "
                    "its context expects a different type",
                )
                results.append(self._suggest(change, adapted))

        # 5. If no child removal fixed things, this node is a minimal
        #    removable unit: report its removal.
        if not child_fixes:
            wildcard = wildcard_for(node)
            if wildcard is not None:
                fixed = replace_at(root, path, wildcard)
                change = Change(
                    path=path,
                    original=node,
                    replacement=wildcard,
                    kind=KIND_REMOVE,
                    description="removing this expression fixes the type error",
                )
                suggestion = self._suggest(change, fixed)
                self._flag_unbound(root, path, node, suggestion)
                results.append(suggestion)

        # 6. Triage: the only outcome for a big subtree is removing it all.
        only_removal = all(s.kind == KIND_REMOVE and s.change.path == path for s in results)
        if (
            only_removal
            and self.config.enable_triage
            and triage_depth < self.config.max_triage_depth
            and node_size(node) > self.config.triage_threshold
        ):
            from .triage import triage_node

            triaged = triage_node(self, root, path, triage_depth + 1)
            if triaged:
                # The wholesale removal that triggered triage "is almost
                # never useful" (Section 2.4); report the isolated errors.
                results = [
                    s
                    for s in results
                    if not (s.kind == KIND_REMOVE and s.change.path == path)
                ]
                results.extend(triaged)
        return results

    # ------------------------------------------------------------------
    # Change application
    # ------------------------------------------------------------------

    def _try_changes(self, root: Program, path: Path, node: Node) -> List[Suggestion]:
        """Run the enumerator's (lazy, structured) changes for one node."""
        results: List[Suggestion] = []
        # FIFO worklist: a deque keeps lazy expansions O(1) per pop where
        # ``list.pop(0)`` was O(n) (quadratic over long expansion chains).
        worklist: Deque[ChangeNode] = deque(self.enumerator.changes(node, path))
        if not worklist:
            return results
        if self.tracer.enabled:
            span = self.tracer.span("enumerate", path=format_path(path))
        else:
            span = self.tracer.span("enumerate")
        with span as sp:
            calls_before = self.oracle.calls
            if self._pool is not None:
                tested = self._drain_pooled(root, worklist, results)
            else:
                tested = self._drain_serial(root, worklist, results)
            sp.set("tested", tested)
            sp.set("successes", len(results))
            sp.set("oracle_calls", self.oracle.calls - calls_before)
        return results

    def _drain_serial(
        self,
        root: Program,
        worklist: Deque[ChangeNode],
        results: List[Suggestion],
        limit: Optional[int] = None,
    ) -> int:
        """The serial worklist loop (the exact pre-parallel code path when
        ``jobs=1``), plus the per-search dedup memo.

        ``limit`` bounds how many candidates are processed before
        returning (used by the pooled drain while the circuit breaker is
        open, so it can re-probe the pool between serial batches)."""
        tested = 0
        processed = 0
        keyer = self._dedup_keyer
        while worklist and (limit is None or processed < limit):
            processed += 1
            change_node = worklist.popleft()
            change = change_node.change
            candidate = replace_at(root, change.path, change.replacement)
            key = keyer(candidate) if keyer is not None else None
            verdict = self._tested.get(key) if key is not None else None
            if verdict is None:
                self._tick("constructive_tests")
                self.metrics.incr(f"enum.tested.{change.rule or 'unknown'}")
                tested += 1
                verdict = self._passes(candidate)
                if key is not None:
                    self._tested[key] = verdict
            else:
                self._count_dedup_skip()
            self._apply_verdict(change_node, change, candidate, verdict, results, worklist)
        return tested

    def _drain_pooled(
        self,
        root: Program,
        worklist: Deque[ChangeNode],
        results: List[Suggestion],
    ) -> int:
        """The parallel worklist loop: pre-check batches in pool workers,
        apply verdicts in enumeration order.

        Sound because lazy expansions only ever *append* to the FIFO
        worklist: everything queued right now will be tested no matter how
        earlier candidates turn out, so checking a whole batch concurrently
        changes only wall-clock test order — never which (candidate,
        verdict) pairs the search applies, nor their order.  Every applied
        verdict is re-accounted against the parent oracle
        (:meth:`Oracle.account_verdict`), so budgets, call counts, and the
        dedup memo behave exactly as in a serial run.
        """
        tested = 0
        pool = self._pool
        keyer = self._dedup_keyer
        prefix_decls = self._prefix_decls
        prefix_len = len(prefix_decls)
        while worklist:
            if pool.broken:
                # Permanently degraded: finish this worklist serially.
                return tested + self._drain_serial(root, worklist, results)
            if not pool.ready():
                # Circuit breaker open: check one batch serially, then ask
                # again — after the cool-down the breaker half-opens and
                # the next round goes parallel to probe recovery.
                tested += self._drain_serial(
                    root, worklist, results, limit=pool.batch_size
                )
                continue
            # Drain one batch off the front of the worklist.
            batch = []
            while worklist and len(batch) < pool.batch_size:
                change_node = worklist.popleft()
                change = change_node.change
                candidate = replace_at(root, change.path, change.replacement)
                batch.append((change_node, change, candidate))
            # Ship each distinct unchecked candidate once: its declarations
            # past the shared prefix, correlated by batch slot.
            suffixes: List[tuple] = []
            slot_of_key: Dict[object, int] = {}
            entries = []
            for change_node, change, candidate in batch:
                key = keyer(candidate) if keyer is not None else None
                slot: Optional[int] = None
                if key is not None and key in self._tested:
                    pass  # memo replay at apply time; nothing to ship
                elif key is not None and key in slot_of_key:
                    slot = slot_of_key[key]
                elif self._shares_prefix(candidate, prefix_decls, prefix_len):
                    slot = len(suffixes)
                    suffixes.append(tuple(candidate.decls[prefix_len:]))
                    if key is not None:
                        slot_of_key[key] = slot
                # else: unshippable (a change edited the prefix — possible
                # only via custom rules); checked serially at apply time.
                entries.append((change_node, change, candidate, key, slot))
            remaining = (
                self._deadline.remaining() if self._deadline is not None else None
            )
            verdicts = (
                pool.check_suffixes(suffixes, remaining, self.oracle)
                if suffixes
                else []
            )
            # Apply in enumeration order; any candidate the pool left
            # unchecked (crash, per-batch deadline) falls back to the
            # parent oracle right here, in order.
            for change_node, change, candidate, key, slot in entries:
                verdict = self._tested.get(key) if key is not None else None
                if verdict is not None:
                    self._count_dedup_skip()
                else:
                    pooled = verdicts[slot] if slot is not None else None
                    self._tick("constructive_tests")
                    self.metrics.incr(f"enum.tested.{change.rule or 'unknown'}")
                    tested += 1
                    if pooled is None:
                        self.metrics.incr("parallel.fallback_checks")
                        verdict = self._passes(candidate)
                    else:
                        verdict = self.oracle.account_verdict(candidate, pooled)
                    if key is not None:
                        self._tested[key] = verdict
                self._apply_verdict(
                    change_node, change, candidate, verdict, results, worklist
                )
        return tested

    @staticmethod
    def _shares_prefix(candidate: Program, prefix_decls: Tuple, prefix_len: int) -> bool:
        """Whether a candidate still holds the armed prefix by identity —
        the invariant that lets only its suffix cross to workers."""
        decls = candidate.decls
        if len(decls) <= prefix_len:
            return False
        for i in range(prefix_len):
            if decls[i] is not prefix_decls[i]:
                return False
        return True

    def _count_dedup_skip(self) -> None:
        self.stats.dedup_skipped += 1
        self.metrics.incr("search.dedup_skipped")

    def _apply_verdict(
        self,
        change_node: ChangeNode,
        change: Change,
        candidate: Program,
        verdict: bool,
        results: List[Suggestion],
        worklist: Deque[ChangeNode],
    ) -> None:
        """Record one (candidate, verdict) pair: suggestion + expansions.

        This is the only place enumeration outcomes are produced, shared
        verbatim by the serial, pooled, and memo-replay paths — which is
        what makes "byte-identical suggestions" a structural property
        rather than a testing hope.
        """
        if verdict:
            if not change.is_probe:
                self.stats.record_success(change.rule)
                self.metrics.incr(f"enum.success.{change.rule or 'unknown'}")
                results.append(self._suggest(change, candidate))
            if change_node.on_success is not None:
                worklist.extend(self._expanded(change_node.on_success()))
        else:
            if change_node.on_failure is not None:
                worklist.extend(self._expanded(change_node.on_failure()))

    def _expanded(self, followups: List[ChangeNode]) -> List[ChangeNode]:
        """Count lazily expanded follow-up changes (generated-vs-tested)."""
        if self.metrics.enabled:
            for cn in followups:
                self.metrics.incr(f"enum.generated.{cn.change.rule or 'unknown'}")
        return followups

    def _suggest(self, change: Change, fixed_program: Program) -> Suggestion:
        return Suggestion(change=change, program=fixed_program)

    def _flag_unbound(self, root: Program, path: Path, node: Node, suggestion: Suggestion) -> None:
        """Removal worked; if adaptation fails on a variable it is unbound.

        Section 3.3: "because removing print works but replacing it with
        adapt print does not, we can conclude that print is an unbound
        variable."
        """
        if not isinstance(node, EVar):
            return
        if not self.config.enable_adaptation:
            return
        self._tick("adaptation_tests")
        if not self._passes(replace_at(root, path, adapt_expr(node))):
            suggestion.unbound_variable = node.name

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _passes(self, program: Program) -> bool:
        return self.oracle.passes(program)

    def _searchable_children(self, root: Program, path: Path) -> Iterator[Path]:
        """Paths of the nearest searchable descendants (exprs/patterns),
        looking through transparent nodes like match cases and bindings."""
        node = get_at(root, path)
        yield from self._searchable_under(node, path)

    def _searchable_under(self, node: Node, path: Path) -> Iterator[Path]:
        for step, child in node.child_items():
            child_path = path + (step,)
            if is_searchable(child):
                yield child_path
            else:
                yield from self._searchable_under(child, child_path)
