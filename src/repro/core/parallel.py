"""Parallel candidate checking: fan oracle calls across worker processes.

SEMINAL's inner loop is embarrassingly parallel (paper Section 2.2): the
searcher enumerates candidate programs and each oracle check is an
independent pure yes/no question.  This module adds the batching/sharding
layer that exploits that:

* :class:`WorkerPool` — ships batches of candidate programs to
  ``ProcessPoolExecutor`` workers.  Each worker holds its own
  :class:`~repro.core.oracle.Oracle`, seeded once per search from the same
  passing prefix the parent's oracle snapshotted (the worker re-derives a
  :class:`~repro.miniml.infer.PrefixSnapshot` from the pickled prefix
  declarations), so candidate checks ride the incremental fast path on
  every worker.  Per candidate only the declarations *after* the prefix are
  shipped (pickled AST — exact fidelity; the pretty-printer is lossy for
  synthetic wildcard nodes), correlated by batch slot.
* :func:`explain_batch_worker` — the per-*program* worker behind
  :func:`repro.core.seminal.explain_many`: one whole ``explain()`` call per
  task, for the batch front end (``python -m repro explain --jobs N``).

Determinism
-----------
Parallel and serial searches produce **byte-identical** suggestions and
ranks.  The searcher's worklist is FIFO and lazy expansions only ever
*append*: every candidate currently queued will be tested no matter how
earlier candidates turn out, so the searcher may pre-test a whole batch
concurrently and then *apply* the verdicts strictly in enumeration order
(recording suggestions, expanding follow-ups, counting budget).  Verdicts
are pure functions of the candidate program, so only wall-clock test order
changes — never the sequence of (candidate, verdict) applications the
search observes.

Supervision (fault tolerance)
-----------------------------
A worker death degrades *one batch*, never the pool.  The pool is
supervised: a crashed or hung worker costs one *restart* — the executor is
torn down (hung processes terminated) and respawned after a bounded
jitter-free exponential backoff (:class:`~repro.core.resilience
.RestartPolicy`).  The failed batch is then *re-checked by bisection*:
sub-chunks are probed on fresh workers until the specific candidate(s)
that reproducibly kill workers are isolated.  A candidate that fails
``poison_confirmations`` consecutive single-candidate probes — each on a
freshly respawned worker, which absolves candidates that merely sat on an
unlucky crash schedule — is **quarantined**: it is answered with a clean
``crash`` verdict (flowing through the parent's ``account_verdict`` path,
so it is counted as ``oracle.crashes`` exactly like a serial in-process
crash) and never shipped to a worker again.

Only a restart *storm* — more than ``max_restarts`` failed batches within
a rolling window — trips the :class:`~repro.core.resilience
.CircuitBreaker` open: :meth:`WorkerPool.ready` answers ``False`` and the
searcher drains candidates serially.  After ``cooldown_seconds`` the
breaker half-opens, the next batch probes the pool, and a clean batch
restores parallelism mid-search.  Unrecoverable infrastructure failures
(the submit path itself erroring) still mark the pool :attr:`broken`
permanently, as before.

Resource watchdogs (both opt-in) convert runaway checks into clean crash
verdicts: a per-candidate wall-clock limit (worker-side ``SIGALRM``) and a
per-worker RSS ceiling (checked between candidates; the bloated worker
pool is recycled without charging the breaker).

Telemetry (the flight-recorder contract)
----------------------------------------
Verdicts come home as :class:`WorkerVerdict` records carrying not just the
boolean but *how* it was computed (a ``VERDICT_*`` accounting kind plus an
optional crash-traceback sample), observed worker-side by diffing the
worker oracle's counters around each check.  The searcher replays each
applied record through :meth:`~repro.core.oracle.Oracle.account_verdict`,
so every ``oracle.*`` counter increment happens in the parent, per applied
verdict — which is why a ``jobs=N`` run's merged counters are identical to
a serial run's.  When the pool's registry/tracer are live, each worker
additionally runs a real per-batch :class:`~repro.obs.MetricsRegistry` and
:class:`~repro.obs.Tracer` and ships the snapshot home with the batch: the
pool merges worker histograms (``span.worker.*``) and non-oracle counters
deterministically (worker ``oracle.*`` counters are *dropped* — the parent
replays those), and re-parents worker trace events under the
``parallel.batch`` span that awaited them (timestamps rebased into the
parent's timebase, ``tid`` set to the worker pid so each worker gets its
own Perfetto lane, args annotated with batch/chunk/worker_pid).

Pool counters: ``parallel.batches``, ``parallel.candidates``,
``parallel.worker_crashes``, ``parallel.worker_hangs``,
``parallel.restarts``, ``parallel.breaker.open`` / ``.half_open`` /
``.closed``, ``parallel.quarantined``, ``parallel.quarantine.hits``,
``parallel.quarantine.probes``, ``parallel.watchdog.timeouts``,
``parallel.watchdog.rss``, ``parallel.fallback_checks``.  Events:
``worker_crash``, ``worker_hang``, ``worker_restart``, ``breaker_open``,
``breaker_half_open``, ``breaker_closed``, ``quarantine``,
``watchdog_kill``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.oracle import (
    VERDICT_CRASH,
    VERDICT_CRASH_UNCOUNTED,
    VERDICT_DEPTH,
    VERDICT_FALLBACK,
    VERDICT_FULL,
    VERDICT_INVALIDATED,
    VERDICT_REUSED,
)
from repro.core.resilience import CircuitBreaker, RestartPolicy
from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_TRACER


class WorkerVerdict(NamedTuple):
    """One pre-checked candidate: the verdict plus its accounting story.

    ``kind`` is the ``VERDICT_*`` constant the worker observed (how the
    check was computed: reused / full / crash / ...); ``sample`` carries a
    crash-traceback line when the check crashed, so the parent's
    degradation report keeps real samples even when the crash happened in
    another process.

    When a persistent verdict store is wired in, ``store`` records whether
    the worker's read-only probe hit (``"hit"``/``"miss"``; ``None`` when
    no store was active) and ``err``/``err_kind`` carry the rendered
    checker message of a failing miss — the parent, which performs all
    store writes, persists it when it applies the verdict.

    The trailing ``decls_*`` fields carry the check's per-declaration
    accounting (dependency-pruned re-checking) and the ``trail_*`` fields
    the check's speculative-inference telemetry; the parent folds both
    into its ``oracle.decl.*`` / ``oracle.trail.*`` counters per applied
    verdict, keeping ``jobs=N`` identical to ``jobs=1``.
    """

    ok: bool
    kind: str
    sample: Optional[str] = None
    store: Optional[str] = None
    err: Optional[str] = None
    err_kind: Optional[str] = None
    decls_checked: int = 0
    decls_replayed: int = 0
    decls_skipped: int = 0
    decls_degraded: int = 0
    trail_speculated: int = 0
    trail_rolled_back: int = 0
    trail_fallbacks: int = 0

#: ``SearchConfig.jobs`` sentinel: use one worker per CPU.
AUTO_JOBS = "auto"

Jobs = Union[int, str, None]


class WatchdogTimeout(BaseException):
    """A worker-side per-candidate wall-clock watchdog fired.

    Deliberately a ``BaseException``: the oracle's crash guard converts
    ``Exception`` into a rejection (and the prefix fast path would even
    retry the check from scratch), but a watchdog kill must abort the
    check *now* — the worker loop catches it and records a clean crash
    verdict instead.
    """


def resolve_jobs(jobs: Jobs) -> int:
    """Normalize a ``jobs`` knob to a worker count (1 = serial).

    ``None`` and ``1`` mean serial; :data:`AUTO_JOBS` means one worker per
    CPU (so on a single-core machine ``"auto"`` *is* serial); an integer
    is used as given.  Anything else raises ``ValueError``.
    """
    if jobs is None or jobs == 1:
        return 1
    if jobs == AUTO_JOBS:
        return max(1, os.cpu_count() or 1)
    try:
        n = int(jobs)
        integral = float(jobs) == n
    except (TypeError, ValueError):
        raise ValueError(f"jobs must be a positive int or {AUTO_JOBS!r}, got {jobs!r}")
    if not integral or n < 1:
        raise ValueError(f"jobs must be a positive int or {AUTO_JOBS!r}, got {jobs!r}")
    return n


def _fork_context():
    """Prefer ``fork`` workers (fast start, inherits imports); fall back to
    the platform default where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def terminate_executor(executor) -> None:
    """Tear a process pool down *promptly*: terminate worker processes
    (a hung worker would otherwise survive ``shutdown``), then release the
    executor without waiting.  Never raises — teardown is best-effort."""
    try:
        procs = list(getattr(executor, "_processes", {}).values())
    except Exception:  # pragma: no cover - executor internals moved
        procs = []
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - teardown best-effort
        pass


# ---------------------------------------------------------------------------
# Worker side: one cached oracle per (search) seed
# ---------------------------------------------------------------------------

#: Worker-process cache: the last seed's state tuple.  One entry only — a
#: worker serves one search at a time, and a new search's first batch
#: replaces it.
_SEED_CACHE: Dict[int, Tuple] = {}


def _seed_state(seed_token: int, seed_blob: bytes) -> Tuple:
    state = _SEED_CACHE.get(seed_token)
    if state is not None:
        return state
    from repro.core.oracle import Oracle
    from repro.miniml.ast_nodes import Program

    (
        prefix_decls,
        incremental,
        max_depth,
        fault_plan,
        store_path,
        candidate_timeout,
        rss_limit_mb,
        depprune,
        table_decls,
        speculate,
    ) = pickle.loads(seed_blob)
    if fault_plan is not None:
        from repro.faults import ChaosOracle

        oracle = ChaosOracle(
            fault_plan,
            incremental=incremental,
            max_depth=max_depth,
            depprune=depprune,
            speculate=speculate,
        )
    else:
        oracle = Oracle(
            incremental=incremental,
            max_depth=max_depth,
            depprune=depprune,
            speculate=speculate,
        )
    if store_path:
        # Workers probe the store strictly read-only: the parent performs
        # every write when it applies verdicts, so speculative checks the
        # search never applies leave no trace on disk.
        try:
            store_cls = None
            store_kwargs: Dict[str, Any] = {}
            if fault_plan is not None and getattr(fault_plan, "store_fail_every", None):
                from repro.faults import FlakyStore

                store_cls = FlakyStore
                store_kwargs = dict(
                    fail_every=fault_plan.store_fail_every,
                    fail_streak=fault_plan.store_fail_streak,
                )
            if store_cls is None:
                from repro.store import VerdictStore

                store_cls = VerdictStore
            oracle.attach_store(store_cls(store_path, read_only=True, **store_kwargs))
        except Exception:
            pass  # degrade: the worker just checks everything for real
    if prefix_decls and incremental:
        oracle.arm_prefix(Program(list(prefix_decls)), len(prefix_decls))
    if depprune and table_decls:
        # Record *now*, not lazily: seeding isn't a candidate check, so the
        # recording cost never lands on any candidate's counter delta —
        # per-verdict decl accounting stays identical to a serial run
        # (where the parent pays recording on the search's initial check).
        if oracle.arm_decl_table(Program(list(table_decls))):
            oracle.ensure_decl_table()
    _SEED_CACHE.clear()
    state = (tuple(prefix_decls), oracle, candidate_timeout, rss_limit_mb)
    _SEED_CACHE[seed_token] = state
    return state


def _count_state(oracle) -> Tuple[int, ...]:
    """The oracle counters whose per-check delta classifies a verdict."""
    return (
        oracle.calls,
        oracle.full_checks,
        oracle.prefix_reused,
        oracle.prefix_fallbacks,
        oracle.prefix_invalidated,
        oracle.crashes,
        oracle.depth_rejections,
        len(oracle.crash_samples),
        oracle.store_hits,
        oracle.store_misses,
        oracle.decls_checked,
        oracle.decls_replayed,
        oracle.decls_skipped,
        oracle.decls_degraded,
        oracle.trail_speculated,
        oracle.trail_rolled_back,
        oracle.trail_fallbacks,
    )


def _classify(
    oracle,
    before: Tuple[int, ...],
    ok: bool,
    err: Optional[str] = None,
    err_kind: Optional[str] = None,
) -> WorkerVerdict:
    """Turn the counter delta of one ``check`` call into a verdict record.

    Mirrors the serial accounting paths of :meth:`Oracle._check` — each
    observable outcome maps to exactly one ``VERDICT_*`` kind, so the
    parent's replay reproduces the serial counter increments.
    """
    after = _count_state(oracle)
    (d_calls, _d_full, d_reused, d_fallback, d_invalid,
     d_crash, d_depth, d_samples,
     d_store_hit, d_store_miss,
     d_decl_checked, d_decl_replayed,
     d_decl_skipped, d_decl_degraded,
     d_trail_spec, d_trail_rolled, d_trail_fb) = tuple(
         a - b for a, b in zip(after, before))
    sample = oracle.crash_samples[-1] if d_samples else None
    store = "hit" if d_store_hit else ("miss" if d_store_miss else None)
    if d_depth:
        kind = VERDICT_DEPTH
    elif d_fallback:
        kind = VERDICT_FALLBACK
    elif d_crash and not d_calls:
        kind = VERDICT_CRASH_UNCOUNTED
    elif d_crash:
        kind = VERDICT_CRASH
    elif d_invalid:
        kind = VERDICT_INVALIDATED
    elif d_reused:
        kind = VERDICT_REUSED
    else:
        kind = VERDICT_FULL
    return WorkerVerdict(
        ok, kind, sample, store, err, err_kind,
        d_decl_checked, d_decl_replayed, d_decl_skipped, d_decl_degraded,
        d_trail_spec, d_trail_rolled, d_trail_fb,
    )


def _rss_mb() -> Optional[float]:
    """This process's resident set size in MiB (``None`` if unreadable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-Linux fallback (peak, not current)
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:  # pragma: no cover
        return None


def _raise_watchdog(signum, frame):  # pragma: no cover - fires via SIGALRM
    raise WatchdogTimeout()


def _check_batch(
    seed_token: int,
    seed_blob: bytes,
    items_blob: bytes,
    deadline_remaining: Optional[float],
    want_metrics: bool = False,
    want_trace: bool = False,
) -> Dict[str, Any]:
    """Worker task: verdict records for one chunk of candidate suffixes.

    ``items_blob`` is a pickled list of declaration tuples — the part of
    each candidate program after the shared prefix.  Verdicts are aligned
    by index; ``None`` marks a candidate left unchecked because the
    per-batch soft deadline ran out or the RSS watchdog cut the chunk
    short (the parent re-checks those serially).

    The two resource watchdogs run here, worker-side: a per-candidate
    ``SIGALRM`` wall-clock limit converts a runaway check into a clean
    crash verdict (``watchdog_timeouts`` in the result), and an RSS
    ceiling checked between candidates converts a memory-hogging check to
    a crash verdict and stops the chunk (``rss_exceeded``) so the parent
    can recycle this worker pool.

    When the parent's telemetry is live (``want_metrics``/``want_trace``),
    the chunk runs under a real per-batch registry and tracer — a
    ``worker.batch`` span around the chunk, a ``worker.check`` span per
    candidate — and the result carries the registry snapshot and the raw
    trace events for the pool to merge and re-parent.
    """
    from repro.miniml.ast_nodes import Program

    start = time.perf_counter()
    prefix_decls, oracle, candidate_timeout, rss_limit_mb = _seed_state(
        seed_token, seed_blob
    )
    suffixes: List[tuple] = pickle.loads(items_blob)
    registry = None
    tracer = NULL_TRACER
    if want_metrics or want_trace:
        from repro.obs import MetricsRegistry, Tracer

        registry = MetricsRegistry() if want_metrics else None
        tracer = Tracer(metrics=registry, keep_events=want_trace)
    saved_metrics = oracle.metrics
    if registry is not None:
        oracle.metrics = registry
    use_alarm = bool(candidate_timeout) and hasattr(signal, "SIGALRM")
    watchdog_timeouts = 0
    rss_exceeded: Optional[float] = None
    verdicts: List[Optional[WorkerVerdict]] = []
    try:
        with tracer.span("worker.batch", candidates=len(suffixes)):
            for suffix in suffixes:
                if (
                    deadline_remaining is not None
                    and time.perf_counter() - start >= deadline_remaining
                ):
                    verdicts.append(None)
                    continue
                program = Program(list(prefix_decls) + list(suffix))
                before = _count_state(oracle)
                try:
                    if use_alarm:
                        old_handler = signal.signal(signal.SIGALRM, _raise_watchdog)
                        signal.setitimer(signal.ITIMER_REAL, candidate_timeout)
                    try:
                        with tracer.span("worker.check"):
                            res = oracle.check(program)
                    finally:
                        if use_alarm:
                            signal.setitimer(signal.ITIMER_REAL, 0.0)
                            signal.signal(signal.SIGALRM, old_handler)
                except WatchdogTimeout:
                    watchdog_timeouts += 1
                    verdicts.append(
                        WorkerVerdict(
                            False,
                            VERDICT_CRASH,
                            sample=(
                                "watchdog: check exceeded "
                                f"{candidate_timeout:g}s wall-clock limit"
                            ),
                        )
                    )
                    continue
                err = err_kind = None
                if oracle.store is not None and not res.ok and res.error is not None:
                    # Ship the rendered message home so the parent's store
                    # write preserves display fidelity for future hits.
                    try:
                        err = res.error.render()
                        err_kind = getattr(res.error, "kind", None)
                    except Exception:
                        err = err_kind = None
                verdicts.append(_classify(oracle, before, res.ok, err, err_kind))
                if rss_limit_mb:
                    rss = _rss_mb()
                    if rss is not None and rss > rss_limit_mb:
                        verdicts[-1] = WorkerVerdict(
                            False,
                            VERDICT_CRASH,
                            sample=(
                                f"watchdog: worker rss {rss:.0f}MiB exceeded "
                                f"{rss_limit_mb:g}MiB ceiling"
                            ),
                        )
                        rss_exceeded = rss
                        break
    finally:
        oracle.metrics = saved_metrics
    while len(verdicts) < len(suffixes):
        verdicts.append(None)
    return {
        "verdicts": verdicts,
        "pid": os.getpid(),
        "seconds": time.perf_counter() - start,
        "metrics": registry.snapshot() if registry is not None else None,
        "trace": list(tracer.events) if want_trace else None,
        "watchdog_timeouts": watchdog_timeouts,
        "rss_exceeded": rss_exceeded,
    }


class WorkerPool:
    """A supervised process pool answering "does this candidate type-check?".

    Lifecycle: the searcher creates one pool per ``search_program`` run
    (when ``SearchConfig.jobs`` resolves to more than one worker), calls
    :meth:`arm` once after localization with the passing prefix, then
    :meth:`check_suffixes` per batch, and :meth:`shutdown` in a finally.
    The underlying executor is created lazily on the first batch, so
    searches that never reach a batch pay nothing.

    The pool is merge-deterministic: verdicts come back aligned with the
    submitted order regardless of which worker answered when.  Worker
    deaths are *supervised* (see module docstring): the executor respawns
    with backoff, the failed batch is bisected, reproducible killers are
    quarantined, and only a restart storm trips the circuit breaker —
    :meth:`ready` tells the searcher whether the next batch may go
    parallel.  :attr:`broken` still marks the rare *permanent* failures
    (the submit path itself erroring), after which every batch answers
    "unchecked" immediately — degradation, never an exception.
    """

    def __init__(
        self,
        jobs: Jobs,
        *,
        batch_size: Optional[int] = None,
        metrics=None,
        tracer=None,
        events=None,
        supervision: Optional[RestartPolicy] = None,
        candidate_timeout: Optional[float] = None,
        rss_limit_mb: Optional[float] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        self.jobs = resolve_jobs(jobs)
        #: How many candidates the searcher drains per batch round; sized
        #: so every worker gets a few candidates per round by default.
        self.batch_size = batch_size if batch_size else max(16, 8 * self.jobs)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = events if events is not None else NULL_EVENTS
        self.supervision = supervision if supervision is not None else RestartPolicy()
        self.breaker = CircuitBreaker(
            self.supervision, clock=clock, on_transition=self._on_breaker_transition
        )
        self.candidate_timeout = candidate_timeout
        self.rss_limit_mb = rss_limit_mb
        self.broken = False
        self.batches = 0
        self.candidates = 0
        self.worker_crashes = 0
        self.worker_hangs = 0
        self.restarts = 0
        self.quarantined = 0
        self.watchdog_timeouts = 0
        self.watchdog_rss = 0
        self._sleep = sleep
        self._quarantine: set = set()
        self._poison_strikes: Dict[str, int] = {}
        self._respawn_pending = False
        self._recycle_pending = False
        self._executor = None
        self._seed_token = 0
        self._seed_blob: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def arm(
        self,
        prefix_decls: Sequence,
        *,
        incremental: bool = True,
        max_depth: Optional[int] = None,
        fault_plan=None,
        store_path: Optional[str] = None,
        depprune: bool = True,
        table_decls: Optional[Sequence] = None,
        speculate: bool = True,
    ) -> None:
        """Seed workers for one search: the passing prefix plus oracle knobs.

        The prefix declarations are pickled once here; every batch carries
        the blob and workers cache the parsed state by ``seed_token``, so
        each worker re-derives its :class:`PrefixSnapshot` at most once per
        search.  ``fault_plan`` (a :class:`repro.faults.FaultPlan`) seeds
        workers with a :class:`~repro.faults.ChaosOracle` instead — the
        fault-injection route the chaos tests use.  ``store_path`` points
        workers at the parent's persistent verdict store (opened strictly
        read-only worker-side).  ``table_decls`` (the localized baseline's
        declarations, ``decls[:bad+1]``) seeds each worker's declaration
        outcome table, recorded eagerly at seed time so ``jobs=N`` decl
        accounting matches ``jobs=1`` per applied verdict.
        """
        self._seed_token += 1
        self._seed_blob = pickle.dumps(
            (
                tuple(prefix_decls),
                incremental,
                max_depth,
                fault_plan,
                store_path,
                self.candidate_timeout,
                self.rss_limit_mb,
                depprune,
                tuple(table_decls) if table_decls is not None else None,
                speculate,
            )
        )

    # ------------------------------------------------------------------
    # Supervision plumbing
    # ------------------------------------------------------------------

    def ready(self) -> bool:
        """May the next batch go parallel?  ``False`` while the pool is
        permanently broken or the breaker is open (an open breaker whose
        cool-down elapsed half-opens here and answers ``True``)."""
        return (
            not self.broken
            and self._seed_blob is not None
            and self.breaker.allow()
        )

    def _on_breaker_transition(self, old: str, new: str) -> None:
        counter = {
            "open": "parallel.breaker.open",
            "half-open": "parallel.breaker.half_open",
            "closed": "parallel.breaker.closed",
        }.get(new)
        if counter:
            self.metrics.incr(counter)
        event = {
            "open": "breaker_open",
            "half-open": "breaker_half_open",
            "closed": "breaker_closed",
        }.get(new)
        if event:
            self.events.emit(
                event, from_state=old, failures=self.breaker.recent_failures
            )

    @staticmethod
    def _suffix_digest(suffix: Sequence) -> str:
        """Stable per-process identity for a candidate suffix (quarantine
        bookkeeping): digest of the same pickle that ships to workers."""
        return hashlib.sha1(pickle.dumps(tuple(suffix))).hexdigest()

    def _hang_timeout(self, deadline_remaining: Optional[float]) -> Optional[float]:
        if self.supervision.hang_timeout_seconds is not None:
            return self.supervision.hang_timeout_seconds
        if deadline_remaining is not None:
            # A healthy worker returns by the batch soft deadline; 5s of
            # grace covers result shipping before we call it hung.
            return deadline_remaining + 5.0
        return None

    def _teardown_workers(self) -> None:
        """Kill the current executor (dead or hung) and schedule a
        backed-off respawn for the next submission."""
        executor = self._executor
        self._executor = None
        self._respawn_pending = True
        if executor is not None:
            terminate_executor(executor)

    def _on_worker_crash(self) -> None:
        self.worker_crashes += 1
        self.metrics.incr("parallel.worker_crashes")
        self.events.emit("worker_crash", batches=self.batches)
        self._teardown_workers()

    def _on_worker_hang(self) -> None:
        self.worker_crashes += 1
        self.worker_hangs += 1
        self.metrics.incr("parallel.worker_hangs")
        self.events.emit("worker_hang", batches=self.batches)
        self._teardown_workers()

    # ------------------------------------------------------------------
    # Batch checking
    # ------------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None:
            if self._respawn_pending:
                restart = self.restarts + 1
                backoff = self.supervision.backoff_for(restart)
                if backoff > 0:
                    self._sleep(backoff)
                self.restarts = restart
                self._respawn_pending = False
                self.metrics.incr("parallel.restarts")
                self.events.emit(
                    "worker_restart",
                    restart=restart,
                    backoff_seconds=round(backoff, 6),
                )
            from concurrent.futures import ProcessPoolExecutor

            context = _fork_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._executor

    def _submit(
        self,
        executor,
        suffixes: Sequence[Sequence],
        indices: Sequence[int],
        deadline_remaining: Optional[float],
        want_metrics: bool,
        want_trace: bool,
    ):
        return executor.submit(
            _check_batch,
            self._seed_token,
            self._seed_blob,
            pickle.dumps([tuple(suffixes[i]) for i in indices]),
            deadline_remaining,
            want_metrics,
            want_trace,
        )

    def check_suffixes(
        self,
        suffixes: Sequence[Sequence],
        deadline_remaining: Optional[float] = None,
        oracle=None,
    ) -> List[Optional[WorkerVerdict]]:
        """Check candidate suffixes concurrently; verdicts aligned by index.

        Each element of ``suffixes`` is the list of declarations a
        candidate appends to the armed prefix.  The result holds one
        :class:`WorkerVerdict` record per candidate (the boolean plus the
        accounting kind the caller replays via ``account_verdict``);
        ``None`` means "unchecked" (broken pool, unrecovered worker death,
        or per-batch deadline) — the caller must fall back to its own
        oracle for those.  ``oracle`` is accepted for backwards
        compatibility and no longer consulted: all oracle accounting now
        flows through the caller's per-verdict replay.
        """
        n = len(suffixes)
        if n == 0:
            return []
        verdicts: List[Optional[WorkerVerdict]] = [None] * n
        if self.broken or self._seed_blob is None or not self.breaker.allow():
            return verdicts
        want_metrics = self.metrics is not NULL_METRICS
        want_trace = bool(getattr(self.tracer, "enabled", False))
        # Quarantine pre-filter: candidates already convicted of killing
        # workers are answered locally with a crash verdict — the parent's
        # account_verdict replay counts them as oracle.crashes, exactly
        # like a serial in-process crash.
        live = list(range(n))
        if self._quarantine:
            live = []
            for i in range(n):
                digest = self._suffix_digest(suffixes[i])
                if digest in self._quarantine:
                    verdicts[i] = WorkerVerdict(
                        False,
                        VERDICT_CRASH,
                        sample="quarantined: candidate reproducibly kills workers",
                    )
                    self.metrics.incr("parallel.quarantine.hits")
                else:
                    live.append(i)
            if not live:
                return verdicts
        chunk = max(1, -(-len(live) // self.jobs))  # ceil(len / jobs)
        chunks = [live[i : i + chunk] for i in range(0, len(live), chunk)]
        from concurrent.futures.process import BrokenProcessPool

        try:
            executor = self._ensure_executor()
        except Exception:
            self._mark_broken()
            return verdicts
        futures = []
        for idxs in chunks:
            try:
                futures.append(
                    self._submit(
                        executor, suffixes, idxs, deadline_remaining,
                        want_metrics, want_trace,
                    )
                )
            except BrokenProcessPool:
                # Fork workers start instantly: a chunk submitted a moment
                # ago may have already killed its worker, breaking the
                # executor before the remaining chunks could be submitted.
                # A supervised death, not infrastructure breakage — the
                # unsubmitted chunks join the recovery set below.
                self._on_worker_crash()
                break
            except Exception:
                # The submit path itself failing (pickling error, spawn
                # failure) is unrecoverable infrastructure breakage.
                self._mark_broken()
                return verdicts
        self.batches += 1
        batch_id = self.batches
        self.candidates += n
        self.metrics.incr("parallel.batches")
        self.metrics.incr("parallel.candidates", n)
        hang_timeout = self._hang_timeout(deadline_remaining)
        # A submit-time death already tore the executor down: salvage what
        # finished, send everything else (submitted or not) to recovery.
        died = len(futures) < len(chunks)
        failed: List[List[int]] = [list(idxs) for idxs in chunks[len(futures):]]
        for index, (idxs, future) in enumerate(zip(chunks, futures)):
            with self.tracer.span(
                "parallel.batch", batch=batch_id, chunk=index
            ) as sp:
                result = None
                if died:
                    # The executor is already torn down; salvage chunks
                    # that finished before the death, leave the rest for
                    # bisection recovery.
                    result = self._result_now(future)
                else:
                    from concurrent.futures import TimeoutError as FuturesTimeout

                    try:
                        result = future.result(timeout=hang_timeout)
                    except FuturesTimeout:
                        self._on_worker_hang()
                        died = True
                    except Exception:
                        self._on_worker_crash()
                        died = True
                if result is None:
                    failed.append(list(idxs))
                    sp.set("crashed", True)
                    continue
                self._absorb(result, idxs, verdicts, batch_id, index, sp)
        if failed:
            # One breaker charge per failed batch (not per probe): the
            # breaker counts incidents, bisection diagnoses them.
            self.breaker.record_failure()
            self._recover(failed, suffixes, verdicts, deadline_remaining, batch_id)
        else:
            self.breaker.record_success()
        if self._recycle_pending:
            # An RSS watchdog fired: recycle the bloated workers now that
            # every future is consumed.  Not a failure — no breaker charge
            # and no backoff beyond the respawn itself.
            self._recycle_pending = False
            self._teardown_workers()
        return verdicts

    def _result_now(self, future):
        """A completed future's result, else ``None`` (never blocks)."""
        if not future.done():
            return None
        try:
            return future.result(timeout=0)
        except Exception:
            return None

    def _absorb(
        self, result: Dict[str, Any], idxs: Sequence[int],
        verdicts: List[Optional[WorkerVerdict]], batch_id: int, chunk_index: int,
        sp=None,
    ) -> None:
        """Fold one worker result into the batch: verdicts by original
        slot, telemetry merged, watchdog kills counted."""
        for slot, verdict in zip(idxs, result["verdicts"]):
            verdicts[slot] = verdict
        if sp is not None:
            sp.set("pid", result["pid"])
            sp.set("candidates", len(idxs))
            sp.set("worker_seconds", round(result["seconds"], 6))
        timeouts = result.get("watchdog_timeouts", 0)
        if timeouts:
            self.watchdog_timeouts += timeouts
            self.metrics.incr("parallel.watchdog.timeouts", timeouts)
            self.events.emit(
                "watchdog_kill", kind="timeout", count=timeouts, batch=batch_id
            )
        rss = result.get("rss_exceeded")
        if rss:
            self.watchdog_rss += 1
            self.metrics.incr("parallel.watchdog.rss")
            self.events.emit(
                "watchdog_kill", kind="rss", rss_mb=round(rss, 1), batch=batch_id
            )
            self._recycle_pending = True
        if result.get("metrics"):
            # Worker oracle.* counters are dropped: the searcher replays
            # that accounting per applied verdict, and merging both would
            # double-count (or count checks the search never applied).
            # Histograms and worker-local counters merge freely.
            self.metrics.merge_snapshot(
                result["metrics"], skip_counter_prefixes=("oracle.",)
            )
        if result.get("trace") and sp is not None:
            self.tracer.merge_events(
                result["trace"],
                base_ts_us=sp.start_ts_us,
                tid=result["pid"],
                extra_args={
                    "batch": batch_id,
                    "chunk": chunk_index,
                    "worker_pid": result["pid"],
                },
            )

    # ------------------------------------------------------------------
    # Bisection recovery + quarantine
    # ------------------------------------------------------------------

    def _recover(
        self,
        failed: List[List[int]],
        suffixes: Sequence[Sequence],
        verdicts: List[Optional[WorkerVerdict]],
        deadline_remaining: Optional[float],
        batch_id: int,
    ) -> None:
        """Re-check the chunks that died, bisecting down to the candidates
        that reproducibly kill workers.

        Each probe is one worker round trip; a failed probe splits the
        span (or, at size one, counts a poison strike against that
        candidate).  A strike only accrues on a *fresh* worker — the
        executor is respawned after every death — so candidates that
        merely sat on an unlucky crash schedule are absolved on retry,
        while content-keyed killers reproduce and get quarantined.
        Candidates still unresolved when the probe budget (or the breaker)
        stops the recovery stay ``None`` for the caller's serial fallback.
        """
        policy = self.supervision
        probes = 0
        stack: List[List[int]] = [list(span) for span in failed]
        while stack:
            if self.broken or not self.breaker.allow():
                return
            if probes >= policy.max_probes:
                return
            span = stack.pop(0)
            probes += 1
            self.metrics.incr("parallel.quarantine.probes")
            result = self._probe(suffixes, span, deadline_remaining)
            if result is not None:
                self._absorb(result, span, verdicts, batch_id, -1)
                if len(span) == 1:
                    self._poison_strikes.pop(
                        self._suffix_digest(suffixes[span[0]]), None
                    )
                continue
            if self.broken:
                return
            if len(span) == 1:
                slot = span[0]
                digest = self._suffix_digest(suffixes[slot])
                strikes = self._poison_strikes.get(digest, 0) + 1
                self._poison_strikes[digest] = strikes
                if strikes >= policy.poison_confirmations:
                    self._quarantine_candidate(digest, slot, strikes, verdicts)
                else:
                    stack.insert(0, span)  # retry on the fresh executor
            else:
                mid = len(span) // 2
                stack.insert(0, span[mid:])
                stack.insert(0, span[:mid])

    def _probe(
        self,
        suffixes: Sequence[Sequence],
        span: Sequence[int],
        deadline_remaining: Optional[float],
    ) -> Optional[Dict[str, Any]]:
        """One bisection round trip; ``None`` means the worker died again
        (and the executor is already scheduled for respawn)."""
        from concurrent.futures.process import BrokenProcessPool

        future = None
        for retry in (False, True):
            try:
                executor = self._ensure_executor()
                future = self._submit(
                    executor, suffixes, span, deadline_remaining, False, False
                )
                break
            except BrokenProcessPool:
                # The retained executor broke since the last round trip (a
                # late-detected death): respawn and retry once so a stale
                # executor never counts as a strike against the candidate.
                self._teardown_workers()
                if retry:
                    self._mark_broken()
                    return None
            except Exception:
                self._mark_broken()
                return None
        from concurrent.futures import TimeoutError as FuturesTimeout

        try:
            return future.result(timeout=self._hang_timeout(deadline_remaining))
        except FuturesTimeout:
            self._on_worker_hang()
            return None
        except Exception:
            self._on_worker_crash()
            return None

    def _quarantine_candidate(
        self,
        digest: str,
        slot: int,
        strikes: int,
        verdicts: List[Optional[WorkerVerdict]],
    ) -> None:
        self._quarantine.add(digest)
        self._poison_strikes.pop(digest, None)
        self.quarantined += 1
        self.metrics.incr("parallel.quarantined")
        self.events.emit("quarantine", digest=digest, strikes=strikes)
        verdicts[slot] = WorkerVerdict(
            False,
            VERDICT_CRASH,
            sample=f"quarantined: candidate killed {strikes} consecutive workers",
        )

    def _mark_broken(self) -> None:
        self.broken = True
        self.worker_crashes += 1
        self.metrics.incr("parallel.worker_crashes")
        self.events.emit("worker_crash", batches=self.batches)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Release worker processes promptly (never raises; never blocks on
        a hung worker — processes are terminated, pending work cancelled)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            terminate_executor(executor)


# ---------------------------------------------------------------------------
# Whole-program batch worker (explain_many / `repro explain`)
# ---------------------------------------------------------------------------


def explain_batch_worker(
    label: str, source: str, top: int, kwargs_blob: bytes
) -> bytes:
    """One whole ``explain()`` call, packaged for a worker process.

    Returns a pickled :class:`repro.core.seminal.BatchEntry` — rendering
    happens worker-side so the summary survives even if the full
    :class:`ExplainResult` cannot cross the process boundary (the entry is
    then shipped with ``result=None``).  Input failures (parse errors,
    undecodable text) become ``error`` entries, not exceptions: one bad
    file must never sink the batch.
    """
    from repro.core.seminal import _explain_entry

    entry = _explain_entry(label, source, top, pickle.loads(kwargs_blob))
    try:
        return pickle.dumps(entry)
    except Exception:
        entry.result = None
        return pickle.dumps(entry)
