"""Parallel candidate checking: fan oracle calls across worker processes.

SEMINAL's inner loop is embarrassingly parallel (paper Section 2.2): the
searcher enumerates candidate programs and each oracle check is an
independent pure yes/no question.  This module adds the batching/sharding
layer that exploits that:

* :class:`WorkerPool` — ships batches of candidate programs to
  ``ProcessPoolExecutor`` workers.  Each worker holds its own
  :class:`~repro.core.oracle.Oracle`, seeded once per search from the same
  passing prefix the parent's oracle snapshotted (the worker re-derives a
  :class:`~repro.miniml.infer.PrefixSnapshot` from the pickled prefix
  declarations), so candidate checks ride the incremental fast path on
  every worker.  Per candidate only the declarations *after* the prefix are
  shipped (pickled AST — exact fidelity; the pretty-printer is lossy for
  synthetic wildcard nodes), correlated by batch slot.
* :func:`explain_batch_worker` — the per-*program* worker behind
  :func:`repro.core.seminal.explain_many`: one whole ``explain()`` call per
  task, for the batch front end (``python -m repro explain --jobs N``).

Determinism
-----------
Parallel and serial searches produce **byte-identical** suggestions and
ranks.  The searcher's worklist is FIFO and lazy expansions only ever
*append*: every candidate currently queued will be tested no matter how
earlier candidates turn out, so the searcher may pre-test a whole batch
concurrently and then *apply* the verdicts strictly in enumeration order
(recording suggestions, expanding follow-ups, counting budget).  Verdicts
are pure functions of the candidate program, so only wall-clock test order
changes — never the sequence of (candidate, verdict) applications the
search observes.

Fault tolerance
---------------
A crashed worker degrades, never raises: any pool failure (a worker
process dying, a broken executor, a pickling error) marks the pool broken,
counts ``parallel.worker_crashes``, and returns "unchecked" verdicts — the
searcher then falls back to checking those candidates serially through its
own oracle, so the answers (and the determinism guarantee) survive.
Batches carry the remaining wall-clock budget as a per-batch soft
deadline: a worker that runs out of time returns the verdicts it has and
marks the rest unchecked.

Telemetry (the flight-recorder contract)
----------------------------------------
Verdicts come home as :class:`WorkerVerdict` records carrying not just the
boolean but *how* it was computed (a ``VERDICT_*`` accounting kind plus an
optional crash-traceback sample), observed worker-side by diffing the
worker oracle's counters around each check.  The searcher replays each
applied record through :meth:`~repro.core.oracle.Oracle.account_verdict`,
so every ``oracle.*`` counter increment happens in the parent, per applied
verdict — which is why a ``jobs=N`` run's merged counters are identical to
a serial run's.  When the pool's registry/tracer are live, each worker
additionally runs a real per-batch :class:`~repro.obs.MetricsRegistry` and
:class:`~repro.obs.Tracer` and ships the snapshot home with the batch: the
pool merges worker histograms (``span.worker.*``) and non-oracle counters
deterministically (worker ``oracle.*`` counters are *dropped* — the parent
replays those), and re-parents worker trace events under the
``parallel.batch`` span that awaited them (timestamps rebased into the
parent's timebase, ``tid`` set to the worker pid so each worker gets its
own Perfetto lane, args annotated with batch/chunk/worker_pid).

Pool counters: ``parallel.batches``, ``parallel.candidates``,
``parallel.worker_crashes``, ``parallel.fallback_checks``; a
``worker_crash`` event is emitted to the pool's event log when a worker
dies.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.oracle import (
    VERDICT_CRASH,
    VERDICT_CRASH_UNCOUNTED,
    VERDICT_DEPTH,
    VERDICT_FALLBACK,
    VERDICT_FULL,
    VERDICT_INVALIDATED,
    VERDICT_REUSED,
)
from repro.obs import NULL_EVENTS, NULL_METRICS, NULL_TRACER


class WorkerVerdict(NamedTuple):
    """One pre-checked candidate: the verdict plus its accounting story.

    ``kind`` is the ``VERDICT_*`` constant the worker observed (how the
    check was computed: reused / full / crash / ...); ``sample`` carries a
    crash-traceback line when the check crashed, so the parent's
    degradation report keeps real samples even when the crash happened in
    another process.

    When a persistent verdict store is wired in, ``store`` records whether
    the worker's read-only probe hit (``"hit"``/``"miss"``; ``None`` when
    no store was active) and ``err``/``err_kind`` carry the rendered
    checker message of a failing miss — the parent, which performs all
    store writes, persists it when it applies the verdict.
    """

    ok: bool
    kind: str
    sample: Optional[str] = None
    store: Optional[str] = None
    err: Optional[str] = None
    err_kind: Optional[str] = None

#: ``SearchConfig.jobs`` sentinel: use one worker per CPU.
AUTO_JOBS = "auto"

Jobs = Union[int, str, None]


def resolve_jobs(jobs: Jobs) -> int:
    """Normalize a ``jobs`` knob to a worker count (1 = serial).

    ``None`` and ``1`` mean serial; :data:`AUTO_JOBS` means one worker per
    CPU (so on a single-core machine ``"auto"`` *is* serial); an integer
    is used as given.  Anything else raises ``ValueError``.
    """
    if jobs is None or jobs == 1:
        return 1
    if jobs == AUTO_JOBS:
        return max(1, os.cpu_count() or 1)
    try:
        n = int(jobs)
        integral = float(jobs) == n
    except (TypeError, ValueError):
        raise ValueError(f"jobs must be a positive int or {AUTO_JOBS!r}, got {jobs!r}")
    if not integral or n < 1:
        raise ValueError(f"jobs must be a positive int or {AUTO_JOBS!r}, got {jobs!r}")
    return n


def _fork_context():
    """Prefer ``fork`` workers (fast start, inherits imports); fall back to
    the platform default where fork is unavailable."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


# ---------------------------------------------------------------------------
# Worker side: one cached oracle per (search) seed
# ---------------------------------------------------------------------------

#: Worker-process cache: the last seed's ``(prefix_decls, oracle)``.  One
#: entry only — a worker serves one search at a time, and a new search's
#: first batch replaces it.
_SEED_CACHE: Dict[int, Tuple[tuple, Any]] = {}


def _seed_state(seed_token: int, seed_blob: bytes) -> Tuple[tuple, Any]:
    state = _SEED_CACHE.get(seed_token)
    if state is not None:
        return state
    from repro.core.oracle import Oracle
    from repro.miniml.ast_nodes import Program

    prefix_decls, incremental, max_depth, fault_plan, store_path = pickle.loads(
        seed_blob
    )
    if fault_plan is not None:
        from repro.faults import ChaosOracle

        oracle = ChaosOracle(fault_plan, incremental=incremental, max_depth=max_depth)
    else:
        oracle = Oracle(incremental=incremental, max_depth=max_depth)
    if store_path:
        # Workers probe the store strictly read-only: the parent performs
        # every write when it applies verdicts, so speculative checks the
        # search never applies leave no trace on disk.
        try:
            from repro.store import VerdictStore

            oracle.attach_store(VerdictStore(store_path, read_only=True))
        except Exception:
            pass  # degrade: the worker just checks everything for real
    if prefix_decls and incremental:
        oracle.arm_prefix(Program(list(prefix_decls)), len(prefix_decls))
    _SEED_CACHE.clear()
    state = (tuple(prefix_decls), oracle)
    _SEED_CACHE[seed_token] = state
    return state


def _count_state(oracle) -> Tuple[int, ...]:
    """The oracle counters whose per-check delta classifies a verdict."""
    return (
        oracle.calls,
        oracle.full_checks,
        oracle.prefix_reused,
        oracle.prefix_fallbacks,
        oracle.prefix_invalidated,
        oracle.crashes,
        oracle.depth_rejections,
        len(oracle.crash_samples),
        oracle.store_hits,
        oracle.store_misses,
    )


def _classify(
    oracle,
    before: Tuple[int, ...],
    ok: bool,
    err: Optional[str] = None,
    err_kind: Optional[str] = None,
) -> WorkerVerdict:
    """Turn the counter delta of one ``check`` call into a verdict record.

    Mirrors the serial accounting paths of :meth:`Oracle._check` — each
    observable outcome maps to exactly one ``VERDICT_*`` kind, so the
    parent's replay reproduces the serial counter increments.
    """
    after = _count_state(oracle)
    (d_calls, _d_full, d_reused, d_fallback, d_invalid,
     d_crash, d_depth, d_samples,
     d_store_hit, d_store_miss) = tuple(a - b for a, b in zip(after, before))
    sample = oracle.crash_samples[-1] if d_samples else None
    store = "hit" if d_store_hit else ("miss" if d_store_miss else None)
    if d_depth:
        kind = VERDICT_DEPTH
    elif d_fallback:
        kind = VERDICT_FALLBACK
    elif d_crash and not d_calls:
        kind = VERDICT_CRASH_UNCOUNTED
    elif d_crash:
        kind = VERDICT_CRASH
    elif d_invalid:
        kind = VERDICT_INVALIDATED
    elif d_reused:
        kind = VERDICT_REUSED
    else:
        kind = VERDICT_FULL
    return WorkerVerdict(ok, kind, sample, store, err, err_kind)


def _check_batch(
    seed_token: int,
    seed_blob: bytes,
    items_blob: bytes,
    deadline_remaining: Optional[float],
    want_metrics: bool = False,
    want_trace: bool = False,
) -> Dict[str, Any]:
    """Worker task: verdict records for one chunk of candidate suffixes.

    ``items_blob`` is a pickled list of declaration tuples — the part of
    each candidate program after the shared prefix.  Verdicts are aligned
    by index; ``None`` marks a candidate left unchecked because the
    per-batch soft deadline ran out (the parent re-checks those serially).

    When the parent's telemetry is live (``want_metrics``/``want_trace``),
    the chunk runs under a real per-batch registry and tracer — a
    ``worker.batch`` span around the chunk, a ``worker.check`` span per
    candidate — and the result carries the registry snapshot and the raw
    trace events for the pool to merge and re-parent.
    """
    from repro.miniml.ast_nodes import Program

    start = time.perf_counter()
    prefix_decls, oracle = _seed_state(seed_token, seed_blob)
    suffixes: List[tuple] = pickle.loads(items_blob)
    registry = None
    tracer = NULL_TRACER
    if want_metrics or want_trace:
        from repro.obs import MetricsRegistry, Tracer

        registry = MetricsRegistry() if want_metrics else None
        tracer = Tracer(metrics=registry, keep_events=want_trace)
    saved_metrics = oracle.metrics
    if registry is not None:
        oracle.metrics = registry
    verdicts: List[Optional[WorkerVerdict]] = []
    try:
        with tracer.span("worker.batch", candidates=len(suffixes)):
            for suffix in suffixes:
                if (
                    deadline_remaining is not None
                    and time.perf_counter() - start >= deadline_remaining
                ):
                    verdicts.append(None)
                    continue
                program = Program(list(prefix_decls) + list(suffix))
                before = _count_state(oracle)
                with tracer.span("worker.check"):
                    res = oracle.check(program)
                err = err_kind = None
                if oracle.store is not None and not res.ok and res.error is not None:
                    # Ship the rendered message home so the parent's store
                    # write preserves display fidelity for future hits.
                    try:
                        err = res.error.render()
                        err_kind = getattr(res.error, "kind", None)
                    except Exception:
                        err = err_kind = None
                verdicts.append(_classify(oracle, before, res.ok, err, err_kind))
    finally:
        oracle.metrics = saved_metrics
    return {
        "verdicts": verdicts,
        "pid": os.getpid(),
        "seconds": time.perf_counter() - start,
        "metrics": registry.snapshot() if registry is not None else None,
        "trace": list(tracer.events) if want_trace else None,
    }


class WorkerPool:
    """A process pool that answers "does this candidate type-check?" in bulk.

    Lifecycle: the searcher creates one pool per ``search_program`` run
    (when ``SearchConfig.jobs`` resolves to more than one worker), calls
    :meth:`arm` once after localization with the passing prefix, then
    :meth:`check_suffixes` per batch, and :meth:`shutdown` in a finally.
    The underlying executor is created lazily on the first batch, so
    searches that never reach a batch pay nothing.

    The pool is merge-deterministic: verdicts come back aligned with the
    submitted order regardless of which worker answered when.  Any worker
    failure marks the pool :attr:`broken` (all subsequent batches answer
    "unchecked" immediately) — degradation, never an exception.
    """

    def __init__(
        self,
        jobs: Jobs,
        *,
        batch_size: Optional[int] = None,
        metrics=None,
        tracer=None,
        events=None,
    ):
        self.jobs = resolve_jobs(jobs)
        #: How many candidates the searcher drains per batch round; sized
        #: so every worker gets a few candidates per round by default.
        self.batch_size = batch_size if batch_size else max(16, 8 * self.jobs)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = events if events is not None else NULL_EVENTS
        self.broken = False
        self.batches = 0
        self.candidates = 0
        self.worker_crashes = 0
        self._executor = None
        self._seed_token = 0
        self._seed_blob: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def arm(
        self,
        prefix_decls: Sequence,
        *,
        incremental: bool = True,
        max_depth: Optional[int] = None,
        fault_plan=None,
        store_path: Optional[str] = None,
    ) -> None:
        """Seed workers for one search: the passing prefix plus oracle knobs.

        The prefix declarations are pickled once here; every batch carries
        the blob and workers cache the parsed state by ``seed_token``, so
        each worker re-derives its :class:`PrefixSnapshot` at most once per
        search.  ``fault_plan`` (a :class:`repro.faults.FaultPlan`) seeds
        workers with a :class:`~repro.faults.ChaosOracle` instead — the
        fault-injection route the chaos tests use.  ``store_path`` points
        workers at the parent's persistent verdict store (opened strictly
        read-only worker-side).
        """
        self._seed_token += 1
        self._seed_blob = pickle.dumps(
            (tuple(prefix_decls), incremental, max_depth, fault_plan, store_path)
        )

    # ------------------------------------------------------------------
    # Batch checking
    # ------------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            context = _fork_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._executor

    def check_suffixes(
        self,
        suffixes: Sequence[Sequence],
        deadline_remaining: Optional[float] = None,
        oracle=None,
    ) -> List[Optional[WorkerVerdict]]:
        """Check candidate suffixes concurrently; verdicts aligned by index.

        Each element of ``suffixes`` is the list of declarations a
        candidate appends to the armed prefix.  The result holds one
        :class:`WorkerVerdict` record per candidate (the boolean plus the
        accounting kind the caller replays via ``account_verdict``);
        ``None`` means "unchecked" (broken pool, worker crash, or
        per-batch deadline) — the caller must fall back to its own oracle
        for those.  ``oracle`` is accepted for backwards compatibility and
        no longer consulted: all oracle accounting now flows through the
        caller's per-verdict replay.
        """
        n = len(suffixes)
        if n == 0:
            return []
        unchecked: List[Optional[WorkerVerdict]] = [None] * n
        if self.broken or self._seed_blob is None:
            return unchecked
        want_metrics = self.metrics is not NULL_METRICS
        want_trace = bool(getattr(self.tracer, "enabled", False))
        chunk = max(1, -(-n // self.jobs))  # ceil(n / jobs)
        spans = [(i, min(i + chunk, n)) for i in range(0, n, chunk)]
        try:
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    _check_batch,
                    self._seed_token,
                    self._seed_blob,
                    pickle.dumps([tuple(s) for s in suffixes[lo:hi]]),
                    deadline_remaining,
                    want_metrics,
                    want_trace,
                )
                for lo, hi in spans
            ]
        except Exception:
            self._mark_broken()
            return unchecked
        verdicts = unchecked
        self.batches += 1
        batch_id = self.batches
        self.candidates += n
        self.metrics.incr("parallel.batches")
        self.metrics.incr("parallel.candidates", n)
        for index, ((lo, hi), future) in enumerate(zip(spans, futures)):
            with self.tracer.span(
                "parallel.batch", batch=batch_id, chunk=index
            ) as sp:
                try:
                    result = future.result()
                except Exception:
                    # One dead worker poisons the executor; degrade the
                    # whole pool and leave this chunk (and any later ones)
                    # unchecked for the caller's serial fallback.
                    self._mark_broken()
                    sp.set("crashed", True)
                    continue
                verdicts[lo:hi] = result["verdicts"]
                sp.set("pid", result["pid"])
                sp.set("candidates", hi - lo)
                sp.set("worker_seconds", round(result["seconds"], 6))
                if result["metrics"]:
                    # Worker oracle.* counters are dropped: the searcher
                    # replays that accounting per applied verdict, and
                    # merging both would double-count (or count checks the
                    # search never applied).  Histograms and worker-local
                    # counters merge freely.
                    self.metrics.merge_snapshot(
                        result["metrics"], skip_counter_prefixes=("oracle.",)
                    )
                if result["trace"]:
                    self.tracer.merge_events(
                        result["trace"],
                        base_ts_us=sp.start_ts_us,
                        tid=result["pid"],
                        extra_args={
                            "batch": batch_id,
                            "chunk": index,
                            "worker_pid": result["pid"],
                        },
                    )
        return verdicts

    def _mark_broken(self) -> None:
        self.broken = True
        self.worker_crashes += 1
        self.metrics.incr("parallel.worker_crashes")
        self.events.emit("worker_crash", batches=self.batches)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Release worker processes (never raises; never blocks on a hung
        worker — pending work is cancelled)."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best-effort
                pass


# ---------------------------------------------------------------------------
# Whole-program batch worker (explain_many / `repro explain`)
# ---------------------------------------------------------------------------


def explain_batch_worker(
    label: str, source: str, top: int, kwargs_blob: bytes
) -> bytes:
    """One whole ``explain()`` call, packaged for a worker process.

    Returns a pickled :class:`repro.core.seminal.BatchEntry` — rendering
    happens worker-side so the summary survives even if the full
    :class:`ExplainResult` cannot cross the process boundary (the entry is
    then shipped with ``result=None``).  Input failures (parse errors,
    undecodable text) become ``error`` entries, not exceptions: one bad
    file must never sink the batch.
    """
    from repro.core.seminal import _explain_entry

    entry = _explain_entry(label, source, top, pickle.loads(kwargs_blob))
    try:
        return pickle.dumps(entry)
    except Exception:
        entry.result = None
        return pickle.dumps(entry)
