"""SEMINAL's core: search-based type-error messages (the paper's contribution).

Public surface:

* :func:`explain` — one call from source text to ranked suggestions.
* :func:`explain_many` — the batch mode: many programs per invocation,
  optionally fanned across worker processes (``jobs=``).
* :class:`Searcher`, :class:`SearchConfig` — the search procedure.
* :class:`WorkerPool`/:func:`resolve_jobs` — the parallel candidate-checking
  layer (:mod:`repro.core.parallel`): deterministic merge, crash-degrading.
* :class:`Oracle` — the boolean type-checker interface.
* :class:`MiniMLEnumerator` — the constructive-change catalog.
* :func:`rank` and the message renderers.
* :class:`DegradationReport`/:class:`Deadline` — the fault-tolerance layer
  (:mod:`repro.core.resilience`): every search is best-effort under
  budget, deadline, or oracle crashes.
* :class:`RestartPolicy`/:class:`CircuitBreaker` — worker-pool supervision
  (restart backoff, breaker states, quarantine budgets), plus
  :class:`RetryPolicy`/:func:`with_retry` (:mod:`repro.core.retry`) for
  retrying transient I/O deterministically.
"""

from .changes import (  # noqa: F401
    KIND_ADAPT,
    KIND_CONSTRUCTIVE,
    KIND_REMOVE,
    Change,
    ChangeNode,
    Suggestion,
)
from .enumerator import (  # noqa: F401
    MiniMLEnumerator,
    adapt_expr,
    constructive_change,
    wildcard_expr,
    wildcard_pattern,
)
from .quickfix import AppliedFix, FixAllResult, apply_suggestion, fix_all  # noqa: F401
from .messages import render_report, render_suggestion, replacement_type  # noqa: F401
from .oracle import BudgetExceeded, IncrementalMismatch, Oracle  # noqa: F401
from .parallel import AUTO_JOBS, WorkerPool, resolve_jobs  # noqa: F401
from .ranker import rank  # noqa: F401
from .resilience import (  # noqa: F401
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradationReport,
    REASON_BUDGET,
    REASON_CRASH,
    REASON_DEADLINE,
    REASON_FALLBACK,
    RestartPolicy,
)
from .retry import RetryPolicy, retry, with_retry  # noqa: F401
from .searcher import SearchConfig, Searcher, SearchOutcome, SearchStats  # noqa: F401
from .seminal import BatchEntry, ExplainResult, explain, explain_many  # noqa: F401
