"""A1-A3 — ablations of the design choices DESIGN.md calls out.

* A1 (Section 2.2, "More Efficient Search"): probe-gated lazy change
  collections vs a flat eager enumeration — oracle-call counts.
* A2 (Section 2.4): the greedy cumulative sibling-removal strategy vs the
  two extremes the paper rejects (remove-all, exhaustive subsets).
* A3 (Section 2.3): the ranker's prefer-larger inversion for adaptations —
  without it, the ``if e1 e2 then ...`` example degrades exactly as the
  paper predicts ("adapting e1 also succeeds, which is only a bit more
  useful").
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core import KIND_ADAPT, explain
from repro.core.ranker import rank
from repro.core.searcher import SearchConfig, Searcher
from repro.miniml import parse_program
from repro.miniml.pretty import pretty

# An over-applied call: no permutation of the inner arguments can help, so
# the all-wildcards probe fails once and laziness skips all 3! - 1 = 5
# permutations that eager enumeration pays for.
A1_SRC = """
let combine3 a b c = a + b * c
let r = (combine3 1 2 3) 4
"""

# Several large siblings, two of them broken: triage context search.
A2_SRC = """
let f a =
  let big1 = (a + 1) * (a + 2) + (a + 3) * (a + 4) + true in
  let big2 = (a * 5) + (a * 6) + (a * 7) + (a * 8) in
  let big3 = (a - 1) + (a - 2) + (a - 3) + "oops" in
  big2 + a
"""

A3_SRC = """
let upper s = String.uppercase s
let f e2 e3 e4 = if upper e2 then e3 else e4
"""


def test_a1_lazy_vs_eager_enumeration(benchmark, artifact_dir):
    lazy = benchmark.pedantic(
        lambda: explain(A1_SRC), rounds=3, iterations=1, warmup_rounds=1
    )
    eager = explain(A1_SRC, eager_enumeration=True)
    report = (
        "A1: lazy (probe-gated) vs eager (flat) change enumeration\n"
        f"lazy oracle calls:  {lazy.oracle_calls}\n"
        f"eager oracle calls: {eager.oracle_calls}\n"
        f"best (lazy):  {pretty(lazy.best.change.replacement) if lazy.best else None}\n"
        f"best (eager): {pretty(eager.best.change.replacement) if eager.best else None}"
    )
    write_artifact(artifact_dir, "ablation_a1.txt", report)
    print("\n" + report)
    # Same quality, never more oracle calls.
    assert lazy.best is not None and eager.best is not None
    assert lazy.best.change.rule == eager.best.change.rule
    assert lazy.oracle_calls <= eager.oracle_calls


def test_a2_triage_strategies(benchmark, artifact_dir):
    program = parse_program(A2_SRC)

    def run(strategy):
        searcher = Searcher(config=SearchConfig(triage_strategy=strategy))
        outcome = searcher.search_program(program)
        return outcome, searcher.oracle.calls

    (greedy_outcome, greedy_calls) = benchmark.pedantic(
        lambda: run("greedy"), rounds=3, iterations=1, warmup_rounds=1
    )
    remove_all_outcome, remove_all_calls = run("remove-all")
    exhaustive_outcome, exhaustive_calls = run("exhaustive")

    def summary(name, outcome, calls):
        triaged = sum(1 for s in outcome.suggestions if s.triaged)
        return f"{name:<12} oracle calls: {calls:5d}  triaged suggestions: {triaged}"

    report = "A2: triage sibling-removal strategies\n" + "\n".join(
        [
            summary("greedy", greedy_outcome, greedy_calls),
            summary("remove-all", remove_all_outcome, remove_all_calls),
            summary("exhaustive", exhaustive_outcome, exhaustive_calls),
        ]
    )
    write_artifact(artifact_dir, "ablation_a2.txt", report)
    print("\n" + report)

    # All strategies find triaged suggestions; greedy never costs more
    # oracle calls than exhaustive subset search.
    assert any(s.triaged for s in greedy_outcome.suggestions)
    assert any(s.triaged for s in remove_all_outcome.suggestions)
    assert greedy_calls <= exhaustive_calls


def test_a3_adaptation_ranking_inversion(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: explain(A3_SRC), rounds=3, iterations=1, warmup_rounds=1
    )
    adaptations = [s for s in result.suggestions if s.kind == KIND_ADAPT]
    assert adaptations
    with_inversion = rank(adaptations, adapt_prefers_larger=True)
    without_inversion = rank(adaptations, adapt_prefers_larger=False)

    report = (
        "A3: adaptation ranking with/without the prefer-larger inversion\n"
        f"with inversion (paper):    adapt `{pretty(with_inversion[0].change.original)}'\n"
        f"without inversion:         adapt `{pretty(without_inversion[0].change.original)}'"
    )
    write_artifact(artifact_dir, "ablation_a3.txt", report)
    print("\n" + report)

    # Paper: with the inversion, the whole call ``upper e2`` is adapted;
    # without it, the smaller (less useful) ``upper`` wins.
    assert pretty(with_inversion[0].change.original) == "upper e2"
    assert pretty(without_inversion[0].change.original) != "upper e2"
