"""Per-check constant factor: trail speculation + hash-consed keys.

This is the tentpole benchmark for the oracle's third reuse tier.  The
workload is the *deep corpus*: long programs whose every fifth binding is
a value-restriction weak reference cell (``let r = ref []``) — the shape
that makes per-check state copying expensive, because every copying pass
must re-substitute each weak scheme before it can check anything.  Two
configurations are compared end to end:

* **fast** — the defaults: trail-speculative inference (the snapshot
  tier's live suffix checks *and* the decl table's live replay) plus
  hash-consed :class:`~repro.tree.HCKey` candidate keys;
* **both off** — ``speculate=False`` and the keyer monkeypatched back to
  the legacy nested-tuple structural keys (no hash caching, no
  interning), i.e. the copy-everything regime this PR replaces.

Three claims are checked:

* **Equivalence** — both configurations return byte-identical rendered
  suggestions, verdicts, and oracle-call counts (the speculative tiers
  are invisible except in ``oracle.trail.*`` telemetry);
* **Speedup** — the ISSUE's acceptance gate: the fast configuration is
  at least **1.8x** faster in wall clock on the deep corpus.  Timing
  rounds are interleaved (off, fast, off, fast, ...) and best-of taken
  per configuration, so shared-runner noise hits both sides alike.  The
  gate asserts outside smoke mode only; counters assert always;
* **Allocation** — the ``__slots__`` satellite: the hot type nodes
  (``TVar``/``TCon``/``TArrow``/``TTuple``) and tree helpers carry no
  per-instance ``__dict__``, and a million-allocation microbench records
  their cost in the artifact.

The artifact is written to the repo root as ``BENCH_checker_core.json``
(``BENCH_checker_core_smoke.json`` under ``REPRO_BENCH_SMOKE=1``, so CI
smoke runs never clobber the checked-in baseline).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core import explain
from repro.core.messages import render_suggestion
from repro.miniml import parse_program
from repro.miniml.types import TArrow, TCon, TTuple, TVar
from repro.obs import MetricsRegistry
from repro.tree import DepthProbe, HCKey, Node, StructuralKeyer, _field_names

#: CI smoke mode: smaller programs, one timing round, no wall-clock gate.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

_SIZES = (40,) if SMOKE else (80, 120)
_ROUNDS = 1 if SMOKE else 5
_ALLOC_N = 20_000 if SMOKE else 200_000

REPO_ROOT = pathlib.Path(__file__).parent.parent


def deep_program(n):
    """A deep weak-variable program: every fifth binding is a ``ref []``
    (weak, un-generalized), one structured ill-typed declaration near the
    end drives candidate enumeration, and a tail of users keeps the
    suffix non-trivial."""
    lines = []
    for i in range(n):
        if i % 5 == 0:
            lines.append(f"let r{i} = ref []")
        else:
            lines.append(f"let f{i} x = x + {i}")
    lines.append("let bad = f1 (f2 (f3 (if f4 6 then 1 else 2) + f6 true))")
    for i in range(n, n + 10):
        lines.append(f"let g{i} x = f1 x * 2")
    return parse_program("\n".join(lines) + "\n")


@pytest.fixture(scope="module")
def deep_programs():
    return [deep_program(n) for n in _SIZES]


def _legacy_key(self, root):
    """The pre-hashcons structural keyer: plain nested tuples, re-hashed
    from scratch by every dict operation (CPython does not cache tuple
    hashes), no content interning."""
    memo = self._memo
    entry = memo.get(id(root))
    if entry is not None:
        return entry[1]
    parts = [root.__class__.__name__]
    append = parts.append
    for name in _field_names(root.__class__):
        value = getattr(root, name)
        if isinstance(value, Node):
            append(self._key(value))
        elif isinstance(value, (list, tuple)):
            append(
                tuple(
                    self._key(e) if isinstance(e, Node) else ("#", e) for e in value
                )
            )
        else:
            append(("#", value))
    key = tuple(parts)
    memo[id(root)] = (root, key)
    return key


def _run_all(programs, legacy_keys=False, **kwargs):
    original = StructuralKeyer._key
    if legacy_keys:
        StructuralKeyer._key = _legacy_key
    try:
        return [explain(program, **kwargs) for program in programs]
    finally:
        StructuralKeyer._key = original


def _time_all(programs, legacy_keys=False, **kwargs):
    start = time.perf_counter()
    _run_all(programs, legacy_keys=legacy_keys, **kwargs)
    return time.perf_counter() - start


def test_speculative_search_is_equivalent(deep_programs):
    for program in deep_programs:
        fast = explain(program)
        slow = explain(program, speculate=False)
        assert fast.ok == slow.ok
        assert fast.oracle_calls == slow.oracle_calls
        assert fast.bad_decl_index == slow.bad_decl_index
        assert [render_suggestion(s) for s in fast.suggestions] == [
            render_suggestion(s) for s in slow.suggestions
        ]


def test_type_nodes_are_slotted():
    # The __slots__ satellite is a correctness-of-shape claim, not a
    # timing claim, so it asserts in smoke mode too.
    for instance in (
        TVar(0),
        TCon("int"),
        TArrow(TCon("int"), TCon("int")),
        TTuple([TCon("int"), TCon("bool")]),
        HCKey(("probe",)),
        StructuralKeyer(),
        DepthProbe(),
    ):
        assert not hasattr(instance, "__dict__"), type(instance).__name__


def _alloc_seconds(n):
    unit = TCon("unit")
    start = time.perf_counter()
    for _ in range(n):
        TArrow(TVar(0), TTuple([unit, TVar(1)]))
    return time.perf_counter() - start


def test_checker_core_artifact(deep_programs):
    # Interleaved best-of rounds: noise on a shared runner hits both
    # configurations symmetrically instead of biasing whichever ran last.
    fast_times, off_times = [], []
    _run_all(deep_programs)  # warm parse/import paths
    for _ in range(_ROUNDS):
        off_times.append(_time_all(deep_programs, legacy_keys=True, speculate=False))
        fast_times.append(_time_all(deep_programs))
    fast_s, off_s = min(fast_times), min(off_times)

    metrics = MetricsRegistry()
    fast_results = _run_all(deep_programs, metrics=metrics)
    speculated = metrics.value("oracle.trail.speculated")
    rolled_back = metrics.value("oracle.trail.rolled_back")
    fallbacks = metrics.value("oracle.trail.fallbacks")
    calls = sum(r.oracle_calls for r in fast_results)

    alloc_s = _alloc_seconds(_ALLOC_N)
    speedup = off_s / fast_s if fast_s else float("inf")

    artifact = {
        "benchmark": "checker core: trail speculation + hash-consed keys vs both off",
        "smoke": SMOKE,
        "workload": {
            "kind": "deep weak-variable programs (ref [] every 5th decl)",
            "sizes": list(_SIZES),
            "decls": [len(p.decls) for p in deep_programs],
        },
        "rounds": _ROUNDS,
        "oracle_calls": calls,
        "trail": {
            "speculated": speculated,
            "rolled_back": rolled_back,
            "fallbacks": fallbacks,
        },
        "fast_seconds": round(fast_s, 4),
        "both_off_seconds": round(off_s, 4),
        "speedup": round(speedup, 3),
        "alloc": {
            "allocations": _ALLOC_N * 4,  # nodes per loop iteration
            "seconds": round(alloc_s, 4),
            "ns_per_node": round(alloc_s / (_ALLOC_N * 4) * 1e9, 1),
        },
    }
    name = "BENCH_checker_core_smoke.json" if SMOKE else "BENCH_checker_core.json"
    path = REPO_ROOT / name
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(
        f"\nwall: both-off={off_s:.3f}s fast={fast_s:.3f}s ({speedup:.2f}x); "
        f"{speculated} checks speculated, {rolled_back} trail entries rolled "
        f"back, {fallbacks} fallbacks; alloc {artifact['alloc']['ns_per_node']}"
        f"ns/node\n[artifact written to {path}]"
    )

    # Deterministic gates (hold in smoke mode too): the speculative tiers
    # must actually fire, and never degrade.
    assert speculated > 0
    assert fallbacks == 0
    # The ISSUE's acceptance gate: >= 1.8x wall clock on the deep corpus.
    if not SMOKE:
        assert speedup >= 1.8, (
            f"speculate+hashcons speedup {speedup:.2f}x < 1.8x "
            f"(fast={fast_s:.3f}s, both_off={off_s:.3f}s)"
        )
