"""E1/E2 — Figure 5(a)/(b): category results by programmer and assignment.

Regenerates both stacked-bar figures from the synthetic corpus study and
benchmarks the per-file analysis (the unit of work behind every bar).

Reproduction target (shape, not absolute numbers): SEMINAL is no worse than
the conventional checker on a large majority of files and strictly better
on a significant minority; every programmer and assignment bucket is
dominated by ties + wins.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.evaluation import render_figure5
from repro.evaluation.study import analyze_file


def test_figure5a_by_programmer(benchmark, corpus, study, artifact_dir):
    representative = corpus.representatives[0]
    benchmark.pedantic(
        analyze_file, args=(representative,), rounds=3, iterations=1, warmup_rounds=1
    )
    by_programmer = study.by_programmer
    text = render_figure5(by_programmer, "Figure 5(a): results by programmer")
    write_artifact(artifact_dir, "figure5a.txt", text)
    print("\n" + text)
    # Shape claims: results exist for several programmers, and overall the
    # no-worse fraction dominates.
    assert len(by_programmer) >= 5
    assert study.counts.no_worse >= 0.6


def test_figure5b_by_assignment(benchmark, corpus, study, artifact_dir):
    representative = corpus.representatives[1]
    benchmark.pedantic(
        analyze_file, args=(representative,), rounds=3, iterations=1, warmup_rounds=1
    )
    by_assignment = study.by_assignment
    text = render_figure5(by_assignment, "Figure 5(b): results by assignment")
    write_artifact(artifact_dir, "figure5b.txt", text)
    print("\n" + text)
    assert len(by_assignment) >= 4
    # Every assignment bucket: ties+wins at least match losses.
    for counts in by_assignment.values():
        assert counts.no_worse >= counts.checker_better
