"""E3 — the Section 3.2 headline numbers.

Paper: ours better 19%, checker better 17%, no worse 83%, triage improves
16% of files (cat4/cat3 = +44%, cat2/cat1 = +19%), 9% unhelpful ties.

Reproduction target: same *ordering and rough magnitudes* — SEMINAL at
least matches the checker far more often than not, the checker wins on a
minority comparable to the paper's, and triage contributes a visible slice.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.corpus import generate_corpus
from repro.evaluation import render_headline, run_study


def test_headline_numbers(benchmark, study, artifact_dir):
    # Benchmark a small end-to-end study (corpus slice -> categories).
    small = generate_corpus(scale=0.1, seed=5)

    def run_small():
        return run_study(small, max_files=8)

    benchmark.pedantic(run_small, rounds=2, iterations=1, warmup_rounds=0)

    counts = study.counts
    text = render_headline(counts, study.unhelpful_tie_fraction)
    write_artifact(artifact_dir, "headline.txt", text)
    print("\n" + text)

    # Shape assertions against the paper's claims:
    assert counts.no_worse >= 0.6                      # "83%": large majority
    assert counts.ours_better >= 0.10                  # "19%": significant minority
    assert counts.checker_better <= 0.35               # "17%": bounded minority
    assert counts.ours_better >= counts.checker_better  # who wins overall
    assert counts.triage_helped > 0                    # "triage is significant"
