"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts
(Figures 5-7, the Section 3.2 headline numbers, the worked examples, the
Section 4 case study, or a design-choice ablation).  Rendered artifacts are
written to ``benchmarks/results/`` so ``pytest benchmarks/ --benchmark-only``
leaves the regenerated "tables and figures" on disk next to the timing
numbers it prints.

Timing and counting go through the :mod:`repro.obs` registry (monotonic
``perf_counter_ns`` spans + named counters) rather than ad-hoc timers: the
``headline_telemetry`` fixture runs the README/Figure 2 headline example
once under full instrumentation and shares the registry, so benchmarks can
assert on (and snapshot) per-phase numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.corpus import generate_corpus
from repro.evaluation import run_study
from repro.obs import MetricsRegistry, Tracer

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One corpus + study shared across benchmark modules (module isolation is
#: not worth regenerating a few hundred search runs per file).
_STUDY_SCALE = 0.6
_STUDY_SEED = 2007
_STUDY_MAX_FILES = 80


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def corpus():
    return generate_corpus(scale=_STUDY_SCALE, seed=_STUDY_SEED)


@pytest.fixture(scope="session")
def study(corpus):
    return run_study(corpus, max_files=_STUDY_MAX_FILES)


@pytest.fixture(scope="session")
def headline_telemetry():
    """(registry, tracer, result) for one fully instrumented headline run.

    The program is the paper's Figure 2 example (``examples/fig2.ml``), the
    same one the README quickstart uses.
    """
    from repro.core import explain

    registry = MetricsRegistry()
    tracer = Tracer(metrics=registry)
    source = (EXAMPLES_DIR / "fig2.ml").read_text()
    result = explain(source, tracer=tracer, metrics=registry)
    return registry, tracer, result


def write_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    path = directory / name
    path.write_text(text + "\n")
