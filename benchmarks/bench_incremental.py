"""Prefix-reuse oracle benchmark: before/after on the deepest corpus programs.

Two claims are checked, matching the optimization's contract:

* **Equivalence** — searches with the incremental oracle (running in
  ``cross_check`` mode, so every reused answer is re-derived from scratch
  and compared in-process) return bit-for-bit the same results as searches
  with incremental reuse disabled: same verdict, same oracle-call count,
  same rendered suggestions in the same order.
* **Speed** — on multi-declaration programs the incremental oracle beats
  from-scratch re-inference by a wall-clock margin, because after
  localization every candidate re-checks only the failing declaration
  instead of the whole passing prefix.

The rendered report is written to ``benchmarks/results/incremental.txt``
(the checked-in baseline).  Set ``REPRO_BENCH_SMOKE=1`` to run a scaled
-down version in CI: the equivalence assertion still executes on every
push, while the timing comparison is recorded but not asserted (shared
runners are too noisy for a wall-clock gate).
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import write_artifact

from repro.core import Oracle, explain
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.obs import MetricsRegistry

#: CI smoke mode: tiny corpus, one timing round, no speedup assertion.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

_SCALE = 0.1 if SMOKE else 0.3
_SEED = 7
_N_FILES = 3 if SMOKE else 10
_ROUNDS = 1 if SMOKE else 3


@pytest.fixture(scope="module")
def deep_programs():
    """The deepest (most declarations) representative corpus programs —
    where the prefix being skipped is largest and the win is visible."""
    corpus = generate_corpus(scale=_SCALE, seed=_SEED)
    files = sorted(
        corpus.representatives,
        key=lambda f: len(f.program.decls),
        reverse=True,
    )[:_N_FILES]
    return [f.program for f in files]


def _run_all(programs, **kwargs):
    return [explain(program, **kwargs) for program in programs]


def _time_all(programs, rounds, **kwargs):
    """Best-of-``rounds`` total seconds for explaining every program."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        _run_all(programs, **kwargs)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_incremental_search_is_equivalent(deep_programs):
    for program in deep_programs:
        baseline = explain(program, incremental=False)
        checked = explain(program, oracle=Oracle(cross_check=True))
        assert checked.ok == baseline.ok
        assert checked.oracle_calls == baseline.oracle_calls
        assert checked.bad_decl_index == baseline.bad_decl_index
        assert [render_suggestion(s) for s in checked.suggestions] == [
            render_suggestion(s) for s in baseline.suggestions
        ]


def test_incremental_speedup(deep_programs, artifact_dir):
    full_s = _time_all(deep_programs, _ROUNDS, incremental=False)
    fast_s = _time_all(deep_programs, _ROUNDS)

    # One more instrumented pass for the reuse accounting.
    registry = MetricsRegistry()
    results = _run_all(deep_programs, metrics=registry)
    reused = registry.value("oracle.prefix.reused")
    invalidated = registry.value("oracle.prefix.invalidated")
    full_checks = registry.value("oracle.full_checks")
    calls = sum(r.oracle_calls for r in results)
    decls = [len(p.decls) for p in deep_programs]

    speedup = full_s / fast_s if fast_s else float("inf")
    report = (
        "Incremental prefix-reuse oracle: before/after\n"
        f"corpus: scale={_SCALE} seed={_SEED}, "
        f"{len(deep_programs)} deepest programs "
        f"({min(decls)}-{max(decls)} decls), "
        f"best of {_ROUNDS} round(s)"
        f"{' [smoke]' if SMOKE else ''}\n"
        f"from-scratch (incremental=False): {full_s:.3f}s\n"
        f"prefix reuse (default):           {fast_s:.3f}s\n"
        f"speedup: {speedup:.2f}x\n"
        f"oracle calls: {calls} total — {reused} reused the prefix, "
        f"{full_checks} full checks, {invalidated} invalidations"
    )
    # Smoke runs use a tiny corpus; keep them from clobbering the
    # checked-in full baseline.
    name = "incremental_smoke.txt" if SMOKE else "incremental.txt"
    write_artifact(artifact_dir, name, report)
    print("\n" + report)

    # Most candidate checks must ride the fast path...
    assert reused > full_checks
    # ...and off shared CI runners, the wall clock must actually drop.
    if not SMOKE:
        assert speedup > 1.2
