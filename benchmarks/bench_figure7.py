"""E5 — Figure 7: cumulative distribution of tool running time.

The paper's three curves (full tool / one slow constructive change disabled
/ triage disabled) show: the full tool finishes quickly on most files with
a long tail; disabling the nested-match reparenthesizer trims part of that
tail; disabling triage collapses it ("not a single file takes longer than
4 seconds ... over 95% take less than 2").

Absolute thresholds scale with the substrate (our MiniML checker on 2026
hardware vs their OCaml on 2007 hardware), so the reproduction targets are
the *relative* claims: no-triage is fastest at the tail, and the head of
every curve is fast.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core import explain
from repro.evaluation import percentile, render_figure7, run_timing_study

_N_FILES = 40


def test_figure7_time_cdfs(benchmark, corpus, artifact_dir):
    representative = corpus.representatives[0]
    benchmark.pedantic(
        lambda: explain(representative.program), rounds=3, iterations=1, warmup_rounds=1
    )
    timing = run_timing_study(corpus, max_files=_N_FILES)
    budgets = [0.02, 0.05, 0.25]
    text = render_figure7(timing.curves, budgets)
    write_artifact(artifact_dir, "figure7.txt", text)
    print("\n" + text)

    full = timing.curve("full tool")
    no_triage = timing.curve("no triage")
    no_reparen = timing.curve("no reparen-match change")

    # Tail claims: disabling triage shortens the tail; the middle curve
    # never exceeds the full tool's tail.
    assert percentile(no_triage, 0.95) <= percentile(full, 0.95) * 1.05
    assert percentile(no_triage, 0.99) <= percentile(full, 0.99) * 1.05
    assert percentile(no_reparen, 0.5) <= percentile(full, 0.5) * 1.25
    # Head claim: the majority of files finish fast in every configuration.
    median_budget = percentile(full, 0.5)
    assert median_budget < 1.0  # seconds; generous even for slow machines
