"""E-OBS — the telemetry layer's own performance contract.

Two guarantees future perf PRs regress against:

1. **The null tracer is free.**  The instrumented hot path (searcher,
   oracle, enumerator, triage) runs through :data:`repro.obs.NULL_TRACER` /
   :data:`repro.obs.NULL_METRICS` by default; an uninstrumented ``explain``
   must not be measurably slower than a fully traced one (it should be
   *faster* — the assertion allows generous noise headroom only).

2. **A per-phase baseline exists.**  ``results/telemetry_headline.txt``
   snapshots the headline (Figure 2) example's full metrics table — oracle
   calls by phase and outcome, changes generated/tested/succeeded per rule,
   span durations — so later optimisation work has a reference point with
   more resolution than one wall-clock number.
"""

from __future__ import annotations

import time

from conftest import write_artifact

from repro.core import explain
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - start)
    return best


def test_null_tracer_is_free(corpus):
    """Default (null-telemetry) explain is no slower than a traced one."""
    program = corpus.representatives[0].program
    explain(program)  # warm caches

    plain = _best_of(5, lambda: explain(program))

    def traced():
        registry = MetricsRegistry()
        explain(program, tracer=Tracer(metrics=registry), metrics=registry)

    instrumented = _best_of(5, traced)
    # Real tracing does strictly more work (event dicts, labels, counters);
    # the null path must never cost more.  1.5x absorbs scheduler noise.
    assert plain <= instrumented * 1.5, (
        f"null-telemetry explain took {plain}ns vs {instrumented}ns traced"
    )


def test_null_span_cost_is_nanoscale(benchmark):
    """One null span is a method call returning a shared singleton."""

    def spans():
        for _ in range(1000):
            with NULL_TRACER.span("descend"):
                pass

    per_1000_ns = _best_of(20, spans)
    # Sub-microsecond per span, even on slow CI machines.
    assert per_1000_ns < 1_000_000, f"1000 null spans took {per_1000_ns}ns"
    benchmark.pedantic(spans, rounds=5, iterations=1, warmup_rounds=1)


def test_telemetry_headline_snapshot(headline_telemetry, artifact_dir):
    """Snapshot the headline example's per-phase metrics as the baseline."""
    registry, tracer, result = headline_telemetry
    assert not result.ok
    # The registry's total equals the oracle's own counter — the two
    # accounting systems agree.
    assert registry.value("oracle.calls") == result.oracle_calls
    # Every span closed (the search did not leak an open region).
    assert tracer.open_spans == 0

    lines = [
        "Telemetry baseline — headline example (Figure 2, examples/fig2.ml)",
        f"suggestions: {len(result.suggestions)}",
        f"oracle calls: {result.oracle_calls}",
        "",
    ]
    # Durations vary per machine; snapshot the *counter* table (stable) and
    # append span counts (not seconds) for structure.
    counters = registry.counters()
    width = max(len(name) for name in counters)
    for name, value in counters.items():
        lines.append(f"  {name.ljust(width)}  {value}")
    lines.append("")
    span_names = sorted({e["name"] for e in tracer.events if e["ph"] == "X"})
    lines.append("spans: " + ", ".join(span_names))
    write_artifact(artifact_dir, "telemetry_headline.txt", "\n".join(lines))
