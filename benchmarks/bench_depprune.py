"""Dependency-pruned re-checking: cold vs pruned on the deepest corpus
programs, emitting the machine-readable ``BENCH_depprune.json``.

Two claims are checked, matching the declaration outcome table's contract:

* **Equivalence** — searches with the table on (running in ``cross_check``
  mode, so every table-served answer is re-derived from scratch and
  compared in-process) return bit-for-bit the same results as searches
  with ``depprune=False``: same verdict, same oracle-call count, same
  rendered suggestions in the same order.
* **Pruning** — on multi-declaration programs the table must cut the
  number of *really inferred* declarations (``oracle.decl.checked``) by
  at least 2x: after the initial recording pass, localization's prefix
  checks and every full-path candidate replay recorded schemes for the
  declarations a change cannot reach.  This is a deterministic counter
  gate, so it asserts in smoke mode too; the wall-clock comparison is
  recorded but only asserted outside smoke (shared runners are noisy).

The artifact is written to the repo root as ``BENCH_depprune.json``
(``BENCH_depprune_smoke.json`` under ``REPRO_BENCH_SMOKE=1``, so CI smoke
runs never clobber the checked-in baseline).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.core import Oracle, explain
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.obs import MetricsRegistry

#: CI smoke mode: tiny corpus, one timing round, no wall-clock assertion.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

_SCALE = 0.1 if SMOKE else 0.3
_SEED = 7
_N_FILES = 3 if SMOKE else 10
_ROUNDS = 1 if SMOKE else 3

REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def deep_programs():
    """The deepest (most declarations) representative corpus programs —
    where the suffix a mutation cannot reach is largest."""
    corpus = generate_corpus(scale=_SCALE, seed=_SEED)
    files = sorted(
        corpus.representatives,
        key=lambda f: len(f.program.decls),
        reverse=True,
    )[:_N_FILES]
    return [f.program for f in files]


def _run_all(programs, **kwargs):
    return [explain(program, **kwargs) for program in programs]


def _time_all(programs, rounds, **kwargs):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        _run_all(programs, **kwargs)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_depprune_search_is_equivalent(deep_programs):
    for program in deep_programs:
        baseline = explain(program, depprune=False)
        checked = explain(program, oracle=Oracle(cross_check=True))
        assert checked.ok == baseline.ok
        assert checked.oracle_calls == baseline.oracle_calls
        assert checked.bad_decl_index == baseline.bad_decl_index
        assert [render_suggestion(s) for s in checked.suggestions] == [
            render_suggestion(s) for s in baseline.suggestions
        ]


def test_depprune_artifact(deep_programs):
    cold_s = _time_all(deep_programs, _ROUNDS, depprune=False)
    pruned_s = _time_all(deep_programs, _ROUNDS)

    # Instrumented passes for the per-declaration accounting.  With the
    # table off, every full-path check really infers every declaration —
    # that count is the honest "cold" baseline the 2x gate divides.
    cold = MetricsRegistry()
    cold_results = _run_all(deep_programs, metrics=cold, depprune=False)
    pruned = MetricsRegistry()
    pruned_results = _run_all(deep_programs, metrics=pruned)

    cold_checked = cold.value("oracle.decl.checked")
    pruned_checked = pruned.value("oracle.decl.checked")
    replayed = pruned.value("oracle.decl.replayed")
    skipped = pruned.value("oracle.decl.skipped")
    degraded = pruned.value("oracle.decl.degraded")
    fallbacks = pruned.value("oracle.decl.fallbacks")
    calls = sum(r.oracle_calls for r in pruned_results)
    assert calls == sum(r.oracle_calls for r in cold_results)

    decls = [len(p.decls) for p in deep_programs]
    reduction = cold_checked / pruned_checked if pruned_checked else float("inf")
    speedup = cold_s / pruned_s if pruned_s else float("inf")

    artifact = {
        "benchmark": "dependency-pruned re-checking (cold vs outcome table)",
        "smoke": SMOKE,
        "corpus": {
            "scale": _SCALE,
            "seed": _SEED,
            "files": len(decls),
            "selection": "deepest by declaration count",
            "decls": decls,
        },
        "rounds": _ROUNDS,
        "oracle_calls": calls,
        "decls_checked": {
            "cold": cold_checked,
            "pruned": pruned_checked,
            "reduction": round(reduction, 3),
        },
        "decls_replayed": replayed,
        "decls_prefix_skipped": skipped,
        "decls_degraded": degraded,
        "table_fallbacks": fallbacks,
        "cold_seconds": round(cold_s, 4),
        "pruned_seconds": round(pruned_s, 4),
        "speedup": round(speedup, 3),
    }
    name = "BENCH_depprune_smoke.json" if SMOKE else "BENCH_depprune.json"
    path = REPO_ROOT / name
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(
        f"\ndecls checked: cold={cold_checked} pruned={pruned_checked} "
        f"({reduction:.2f}x reduction), {replayed} replayed, "
        f"{skipped} prefix-skipped; wall {cold_s:.3f}s -> {pruned_s:.3f}s "
        f"({speedup:.2f}x)\n[artifact written to {path}]"
    )

    # The ISSUE's acceptance gate: >= 2x fewer really-inferred declarations.
    # Counter-based and deterministic, so it holds in smoke mode too.
    assert cold_checked >= 2 * pruned_checked
    assert replayed > 0
    assert skipped > 0
    assert degraded == 0
    assert fallbacks == 0
    # Wall clock is recorded honestly but gated loosely: the prefix
    # snapshot already serves the (dominant) enumeration-phase checks, so
    # the table's wall win concentrates in localization's prefix checks —
    # a modest share of these short searches.  The hard gate is the
    # counter reduction above; here we only require replays not to cost
    # more than the inference they displace.
    if not SMOKE:
        assert speedup > 0.9
