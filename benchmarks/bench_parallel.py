"""Parallel candidate checking: serial vs ``jobs="auto"`` on the deepest
corpus programs, emitting the machine-readable ``BENCH_parallel.json``.

Two claims are checked, matching the parallel layer's contract:

* **Determinism** — a pooled search (``jobs=2``, so the pool actually runs
  even on a single-core box) produces byte-identical rendered reports,
  suggestion lists, and oracle-call counts to the serial default, on every
  benchmarked program.
* **Speed** — with ``jobs="auto"`` on a multi-core machine, fanning
  candidate checks across workers beats the serial run on wall clock.
  The speedup assertion (>= 2x) only fires on >= 4 cores and outside
  smoke mode: on fewer cores ``"auto"`` degenerates toward the serial
  path and the honest answer is "no speedup available", which the JSON
  records (``cpu_count``, ``jobs_resolved``) rather than hides.

The artifact is written to the repo root as ``BENCH_parallel.json``
(``BENCH_parallel_smoke.json`` under ``REPRO_BENCH_SMOKE=1``, so CI smoke
runs never clobber the checked-in baseline).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core import explain
from repro.core.messages import render_suggestion
from repro.core.parallel import resolve_jobs
from repro.corpus import generate_corpus
from repro.corpus.generator import Corpus
from repro.evaluation.timing import run_parallel_comparison

#: CI smoke mode: tiny corpus, one timing round, no speedup assertion.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

_SCALE = 0.1 if SMOKE else 1.0
_SEED = 7
_N_FILES = 3 if SMOKE else 10
_ROUNDS = 1 if SMOKE else 3

REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def deep_corpus():
    """A corpus whose representatives are the deepest (most declarations)
    programs — the heaviest searches, where parallelism has work to hide."""
    corpus = generate_corpus(scale=_SCALE, seed=_SEED)
    deepest = sorted(
        corpus.representatives,
        key=lambda f: len(f.program.decls),
        reverse=True,
    )[:_N_FILES]
    return Corpus(files=deepest)


def _signature(result):
    """Everything observable about one explain() outcome, byte-for-byte."""
    return (
        result.ok,
        result.bad_decl_index,
        result.oracle_calls,
        result.render(limit=50),
        [render_suggestion(s) for s in result.suggestions],
    )


def test_parallel_is_byte_identical(deep_corpus):
    for corpus_file in deep_corpus.representatives:
        serial = explain(corpus_file.program)
        pooled = explain(corpus_file.program, jobs=2)
        assert _signature(pooled) == _signature(serial)
        assert not pooled.degraded


def test_parallel_speedup_artifact(deep_corpus):
    best = None
    for _ in range(_ROUNDS):
        comparison = run_parallel_comparison(deep_corpus, jobs="auto")
        assert comparison.calls_match, "parallel run diverged from serial"
        if best is None or comparison.parallel_total < best.parallel_total:
            best = comparison

    decls = [len(f.program.decls) for f in deep_corpus.representatives]
    artifact = {
        "benchmark": "parallel candidate checking (serial vs jobs=auto)",
        "smoke": SMOKE,
        "corpus": {
            "scale": _SCALE,
            "seed": _SEED,
            "files": len(decls),
            "selection": "deepest by declaration count",
            "decls": decls,
        },
        "cpu_count": os.cpu_count(),
        "jobs": "auto",
        "jobs_resolved": resolve_jobs("auto"),
        "rounds": _ROUNDS,
        "serial_seconds": round(best.serial_total, 4),
        "parallel_seconds": round(best.parallel_total, 4),
        "speedup": round(best.speedup, 3),
        "oracle_calls": {
            "serial": sum(best.serial_calls),
            "parallel": sum(best.parallel_calls),
            "identical": best.calls_match,
        },
        "per_file": [
            {
                "decls": d,
                "serial_seconds": round(s, 4),
                "parallel_seconds": round(p, 4),
                "oracle_calls": c,
            }
            for d, s, p, c in zip(
                decls, best.serial_seconds, best.parallel_seconds, best.serial_calls
            )
        ],
    }
    name = "BENCH_parallel_smoke.json" if SMOKE else "BENCH_parallel.json"
    path = REPO_ROOT / name
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\n{best.render()}\n[artifact written to {path}]")

    # The >= 2x acceptance gate needs real cores to mean anything; on a
    # small box the artifact records the honest (non-)result instead.
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        assert best.speedup >= 2.0
