"""E4 — Figure 6: sizes of same-problem equivalence classes.

The paper's distribution is heavily skewed small (most classes have one or
two files; a long tail of compulsive recompilers; log-scale y-axis), and
quotienting matters: 2122 collected files reduce to ~1075 analyzed.

Reproduction target: size-1 classes are the most common bucket, the counts
decay with size, a tail beyond size 4 exists, and quotienting removes a
substantial fraction of raw files.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.corpus import generate_corpus
from repro.evaluation import class_size_histogram, render_figure6


def test_figure6_class_sizes(benchmark, artifact_dir):
    corpus = benchmark.pedantic(
        lambda: generate_corpus(scale=1.0, seed=2007), rounds=3, iterations=1
    )
    sizes = corpus.class_sizes
    text = render_figure6(sizes)
    write_artifact(artifact_dir, "figure6.txt", text)
    print("\n" + text)

    histogram = class_size_histogram(sizes)
    assert histogram.get(1, 0) == max(histogram.values())  # mode at size 1
    assert max(histogram) >= 4                              # a real tail
    total_files = sum(s * n for s, n in histogram.items())
    analyzed = len(sizes)
    assert analyzed < total_files * 0.8  # quotienting removes >20% of files
