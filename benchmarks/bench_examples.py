"""E6-E10 — the paper's worked examples, verified verbatim and timed.

Each benchmark runs the full search on one of the paper's programs and
asserts the *exact* outcome the paper reports:

* E6 (Fig. 2): curried-vs-tupled lambda — "Try replacing fun (x, y) -> x+y
  with fun x y -> x+y of type int -> int -> int".
* E7 (Fig. 8): swapped arguments — "Try replacing add vList1 s with
  add s vList1".
* E8 (Fig. 9): missing argument — add an argument to List.nth.
* E9 (Fig. 4): triage isolates the bad pattern in a multi-error match.
* E10 (Sec. 3.3): print/print_string — triage + the unbound-variable report.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core import explain
from repro.miniml.pretty import pretty

FIG2 = """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
let ans = List.filter (fun x -> x == 0) lst
"""

FIG8 = """
let add str lst = if List.mem str lst then lst else str :: lst
let s = "hello"
let vList1 = ["a"; "b"]
let r = add vList1 s
"""

FIG9 = """
type move = For of int * (move list) | Ahead of int | Turn of int
let rec loop movelist x y dir acc =
  match movelist with
    [] -> acc
  | For (moves, lst) :: tl ->
      let rec finalLst index searchLst =
        if index = (moves - 1) then []
        else (List.nth searchLst) :: (finalLst (index + 1) searchLst)
      in loop (finalLst 0 lst) x y dir acc
  | Ahead n :: tl -> loop tl (x + n) y dir acc
  | Turn n :: tl -> loop tl x y (dir + n) acc
"""

FIG4 = """
let g x y =
  match (x, y) with
    (0, []) -> []
  | (n, []) -> n
  | (_, 5) -> 5 + "hi"
let h = g 3 [1]
"""

PRINT = """
let f x =
  match x with
    0 -> print "zero"
  | 1 -> print "one"
  | _ -> print "other"
"""


def _run_and_record(benchmark, artifact_dir, name, source):
    result = benchmark.pedantic(
        lambda: explain(source), rounds=3, iterations=1, warmup_rounds=1
    )
    report = (
        f"=== {name} ===\n"
        f"oracle calls: {result.oracle_calls}\n"
        f"--- conventional checker ---\n{result.checker_message}\n"
        f"--- SEMINAL (top suggestion) ---\n{result.render_best()}"
    )
    write_artifact(artifact_dir, f"example_{name}.txt", report)
    print("\n" + report)
    return result


def test_e6_figure2(benchmark, artifact_dir):
    result = _run_and_record(benchmark, artifact_dir, "fig2", FIG2)
    best = result.best
    assert best.change.rule == "curry-params"
    assert pretty(best.change.replacement) == "fun x y -> x + y"
    assert "x + y" in result.checker_message  # the checker's bad location
    message = result.render_best()
    assert "of type int -> int -> int" in message


def test_e7_figure8(benchmark, artifact_dir):
    result = _run_and_record(benchmark, artifact_dir, "fig8", FIG8)
    assert pretty(result.best.change.replacement) == "add s vList1"
    assert "string list list" in result.checker_message


def test_e8_figure9(benchmark, artifact_dir):
    result = _run_and_record(benchmark, artifact_dir, "fig9", FIG9)
    best = result.best
    assert best.change.rule == "insert-arg"
    assert pretty(best.change.original) == "List.nth searchLst"
    assert "(int -> move) list" in result.checker_message


def test_e9_figure4_triage(benchmark, artifact_dir):
    result = _run_and_record(benchmark, artifact_dir, "fig4", FIG4)
    best = result.best
    assert best.triaged
    assert "5" in pretty(best.change.original)


def test_e10_print_unbound(benchmark, artifact_dir):
    result = _run_and_record(benchmark, artifact_dir, "print", PRINT)
    assert "Unbound value print" in result.checker_message
    assert any(s.unbound_variable == "print" for s in result.suggestions)
    without = explain(PRINT, enable_triage=False)
    # Without triage the result is "terrible" (a wholesale removal at best).
    assert without.best is None or without.best.kind == "remove"
