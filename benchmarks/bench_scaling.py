"""E12 — the Section 3.2 efficiency claim: time is not correlated with file
size ("the search quickly descends into a small portion of the file").

We grow a program by appending well-typed declarations around one fixed
error and measure oracle calls and wall-clock: the search cost must grow far
slower than the program (prefix localization plus top-down descent touch
only the faulty region, modulo the per-call cost of checking a larger file).
"""

from __future__ import annotations

from conftest import write_artifact

from repro.core import explain

_BAD_DECL = "let bad = List.map (fun (x, y) -> x + y) [1; 2; 3]\n"


def _program(n_padding: int) -> str:
    pads = []
    for i in range(n_padding):
        pads.append(f"let pad{i} a b = a + b * {i + 1}")
        pads.append(f"let use{i} = pad{i} {i} {i + 1}")
    # The error sits in the middle; everything after it is never examined.
    middle = len(pads) // 2
    pads.insert(middle, _BAD_DECL)
    return "\n".join(pads)


def test_e12_search_cost_vs_file_size(benchmark, artifact_dir):
    small_src = _program(4)
    large_src = _program(40)

    small = explain(small_src)
    large = benchmark.pedantic(
        lambda: explain(large_src), rounds=3, iterations=1, warmup_rounds=1
    )

    size_ratio = len(large_src) / len(small_src)
    call_ratio = large.oracle_calls / max(1, small.oracle_calls)
    report = (
        "E12: search cost vs file size\n"
        f"small file: {len(small_src)} chars, {small.oracle_calls} oracle calls\n"
        f"large file: {len(large_src)} chars, {large.oracle_calls} oracle calls\n"
        f"size ratio: {size_ratio:.1f}x, oracle-call ratio: {call_ratio:.2f}x"
    )
    write_artifact(artifact_dir, "scaling.txt", report)
    print("\n" + report)

    # Both find the same fix...
    assert small.best is not None and large.best is not None
    assert small.best.change.rule == large.best.change.rule
    # ...and the call count grows far slower than the file
    # (prefix localization adds ~one call per leading declaration).
    assert call_ratio < size_ratio / 2
