"""E11 — Figures 10/11: the C++ template-function case study.

Regenerates both sides of the paper's comparison: the gcc-style error chain
(deep header locations, ``instantiated from here``, cascading "no match for
call") and SEMINAL's one-line ``ptr_fun(labs)`` suggestion — plus the
vector<vector<long>> variant the paper says would more than double the
message ("the messages would have been over twice as long").
"""

from __future__ import annotations

from conftest import write_artifact

from repro.cpptemplates import explain_cpp, typecheck_cpp_source
from repro.cpptemplates.pretty import pretty_cpp

FIG10 = """
#include <algorithm>
#include <vector>
#include <functional>
#include <ext/functional>
#include <cmath>
using namespace std;
using namespace __gnu_cxx;

void myFun(vector<long>& inv, vector<long>& outv) {
    transform(inv.begin(), inv.end(), outv.begin(),
              compose1(bind1st(multiplies<long>(), 5), labs));
}
"""

FIG10_NESTED = FIG10.replace("vector<long>&", "vector<vector<long> >&").replace(
    "multiplies<long>", "multiplies<vector<long> >"
)


def test_e11_figure10_seminal(benchmark, artifact_dir):
    result = benchmark.pedantic(
        lambda: explain_cpp(FIG10), rounds=3, iterations=1, warmup_rounds=1
    )
    gcc_text = result.check.render("tester2.cpp")
    report = (
        "=== Figure 11: conventional (gcc-style) errors ===\n"
        + gcc_text
        + "\n\n=== SEMINAL for C++ ===\n"
        + result.render_best()
    )
    write_artifact(artifact_dir, "example_cpp_fig10.txt", report)
    print("\n" + report)

    best = result.best
    assert best.change.rule == "wrap-ptr-fun"
    assert pretty_cpp(best.change.replacement) == "ptr_fun(labs)"
    assert best.fixes_everything
    # The paper's signature gcc phrasings:
    assert "is not a class, struct, or union type" in gcc_text
    assert "invalidly declared function type" in gcc_text
    assert "instantiated from here" in gcc_text
    assert "no match for call to" in gcc_text


def test_e11_nested_vectors_double_the_message(benchmark, artifact_dir):
    plain = typecheck_cpp_source(FIG10)
    nested = benchmark.pedantic(
        lambda: typecheck_cpp_source(FIG10_NESTED), rounds=3, iterations=1
    )
    plain_text = plain.render("tester2.cpp")
    nested_text = nested.render("tester2.cpp")
    write_artifact(artifact_dir, "example_cpp_nested.txt", nested_text)
    # "If we had made the same mistake for an operation over
    #  vector<vector<long> > ... the messages would have been over twice as
    #  long."  Our claim is directional: strictly longer, same error count.
    assert not nested.ok
    assert len(nested_text) > len(plain_text)
    assert "vector<long int>" in nested_text
