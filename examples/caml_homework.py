"""The paper's Caml examples, end to end (Figures 2, 8, and 9).

Run:  python examples/caml_homework.py

For each program this prints the conventional checker message (the paper's
left-hand column) and SEMINAL's top suggestion (the right-hand column),
demonstrating the three wins the paper walks through:

* Figure 2 — the checker blames ``x + y`` deep inside a lambda; search
  discovers the lambda should take curried arguments.
* Figure 8 — the checker's message is *located* fine but unintuitive;
  search says "swap the arguments".
* Figure 9 — the checker reports far from the bug (a partial application
  that accidentally type-checked); search adds the missing argument.
"""

from repro.core import explain

EXAMPLES = {
    "Figure 2: curried vs tupled lambda": """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
let ans = List.filter (fun x -> x == 0) lst
""",
    "Figure 8: swapped arguments": """
let add str lst = if List.mem str lst then lst else str :: lst
let s = "hello"
let vList1 = ["a"; "b"]
let r = add vList1 s
""",
    "Figure 9: missing argument (Logo interpreter)": """
type move = For of int * (move list) | Ahead of int | Turn of int
let rec loop movelist x y dir acc =
  match movelist with
    [] -> acc
  | For (moves, lst) :: tl ->
      let rec finalLst index searchLst =
        if index = (moves - 1) then []
        else (List.nth searchLst) :: (finalLst (index + 1) searchLst)
      in loop (finalLst 0 lst) x y dir acc
  | Ahead n :: tl -> loop tl (x + n) y dir acc
  | Turn n :: tl -> loop tl x y (dir + n) acc
""",
}


def main() -> None:
    for title, source in EXAMPLES.items():
        result = explain(source)
        print("=" * 72)
        print(title)
        print("=" * 72)
        print("Type-checker:")
        print("    " + (result.checker_message or "").replace("\n", "\n    "))
        print()
        print(f"Our approach ({result.oracle_calls} oracle calls):")
        print("    " + result.render_best().replace("\n", "\n    "))
        print()


if __name__ == "__main__":
    main()
