"""The C++ template-function prototype (paper Section 4, Figures 10-11).

Run:  python examples/cpp_templates.py

An STL-style client composes functors but passes a raw function pointer
where a functor is required.  gcc's message is a multi-line chain of errors
located deep inside library headers; SEMINAL's search finds the one-token
fix: wrap the pointer with ``ptr_fun``.
"""

from repro.cpptemplates import explain_cpp

CLIENT = """
#include <algorithm>   // for transform
#include <vector>      // for vector
#include <functional>  // for multiplies, bind1st, ptr_fun
#include <ext/functional>  // for compose1
#include <cmath>       // for labs
using namespace std;
using namespace __gnu_cxx;

// compute outv[i] = labs(5 * inv[i])
void myFun(vector<long>& inv, vector<long>& outv) {
    transform(inv.begin(), inv.end(), outv.begin(),
              compose1(bind1st(multiplies<long>(), 5), labs));
}
"""


def main() -> None:
    result = explain_cpp(CLIENT)

    print("=" * 72)
    print("What the conventional compiler prints (cf. the paper's Figure 11):")
    print("=" * 72)
    print(result.check.render("tester2.cpp"))
    print()
    print("=" * 72)
    print(f"SEMINAL for C++ ({result.checker_calls} compiler calls):")
    print("=" * 72)
    print(result.render_best())
    print()
    if result.best is not None and result.best.fixes_everything:
        print("(applying the suggestion makes the file compile cleanly)")


if __name__ == "__main__":
    main()
