"""Quickstart: search-based type-error messages in five lines.

Run:  python examples/quickstart.py

Write an ill-typed MiniML program, call :func:`repro.core.explain`, and
compare the conventional type-checker's message with the ranked suggestions
SEMINAL finds by searching for nearby programs that *do* type-check.
"""

from repro.core import explain

PROGRAM = """
(* A tiny utility: keep the strings shorter than a limit... almost. *)
let shorter_than limit words =
  List.filter (fun w -> String.length w < limit) words

let report = shorter_than ["hello"; "hi"; "greetings"] 3
"""


def main() -> None:
    result = explain(PROGRAM)

    print("=" * 72)
    print("The conventional type-checker says:")
    print("-" * 72)
    print(result.checker_message)
    print()
    print("=" * 72)
    print(f"SEMINAL searched {result.oracle_calls} candidate programs and suggests:")
    print("-" * 72)
    print(result.render(limit=2))


if __name__ == "__main__":
    main()
