"""Run a scaled-down version of the paper's empirical study (Section 3).

Run:  python examples/run_study.py [scale]

Generates a synthetic student corpus (10 programmers x 5 assignments, with
same-problem recompile classes), analyzes each representative file with the
conventional checker, SEMINAL, and SEMINAL-without-triage, grades all three
against the known injected faults, and prints the paper's Figures 5(a),
5(b), 6, 7 plus the Section 3.2 headline numbers.

``scale`` (default 0.4) multiplies the corpus size; 1.0 approximates the
paper's hundreds of analyzed files and takes a couple of minutes.
"""

import sys

from repro.corpus import generate_corpus
from repro.evaluation import (
    render_figure5,
    render_figure6,
    render_figure7,
    render_headline,
    run_study,
    run_timing_study,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    print(f"Generating corpus (scale={scale}) ...")
    corpus = generate_corpus(scale=scale, seed=2007)
    print(
        f"  {len(corpus.files)} collected files, "
        f"{len(corpus.representatives)} analyzed after quotienting\n"
    )

    print("Running the three-tool study ...")
    study = run_study(corpus)
    print()
    print(render_headline(study.counts, study.unhelpful_tie_fraction))
    print()
    print(render_figure5(study.by_programmer, "Figure 5(a): results by programmer"))
    print()
    print(render_figure5(study.by_assignment, "Figure 5(b): results by assignment"))
    print()
    print(render_figure6(corpus.class_sizes))
    print()

    print("Timing the three configurations (Figure 7) ...")
    timing = run_timing_study(corpus, max_files=min(40, len(corpus.representatives)))
    print(render_figure7(timing.curves, budgets=[0.02, 0.05, 0.25]))


if __name__ == "__main__":
    main()
