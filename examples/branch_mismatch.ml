let describe n =
  if n > 0 then "positive" else 0
let answer = describe 7
