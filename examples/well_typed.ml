let double x = x * 2
let total = double 3 + double 4
