"""The open change framework + the automatic repair loop.

Run:  python examples/custom_changes.py

Two of the paper's Section 6 future-work items, working together:

1. an *open framework* where users register new constructive changes
   without touching the search procedure (safe by construction — the
   type-checker oracle rejects anything that does not check), and
2. the quick-fix loop: apply the top suggestion, recompile, repeat — the
   workflow the paper assumes programmers follow.

The custom rule here is one a domain-specific-library author might add:
whenever an int literal meets a string context, offer ``string_of_int n``.
"""

from repro.core import ChangeNode, constructive_change, explain, fix_all
from repro.miniml.ast_nodes import EApp, EConst, EVar


def wrap_string_of_int(node, path):
    """Custom constructive change: ``42`` -> ``string_of_int 42``."""
    if isinstance(node, EConst) and node.kind == "int":
        replacement = EApp(EVar("string_of_int"), [EConst(node.value, "int")])
        change = constructive_change(
            path, node, replacement, "wrap-string-of-int",
            "convert the number to a string",
        )
        return [ChangeNode(change)]
    return []


PROGRAM = 'let banner name n = "run " ^ name ^ " #" ^ 42'

MULTI_ERROR = """let f a =
  let x = 3 + true in
  let y = 4 + "hi" in
  x + y + a
"""


def main() -> None:
    print("=" * 72)
    print("1. A user-registered constructive change")
    print("=" * 72)
    without = explain(PROGRAM)
    print("built-in catalog only:")
    print("    " + without.render_best().replace("\n", "\n    "))
    print()
    with_rule = explain(PROGRAM, custom_rules=[wrap_string_of_int])
    print("with the custom rule registered:")
    print("    " + with_rule.render_best().replace("\n", "\n    "))
    print()

    print("=" * 72)
    print("2. fix_all: repair a two-error function automatically")
    print("=" * 72)
    print("before:")
    print("    " + MULTI_ERROR.replace("\n", "\n    "))
    result = fix_all(MULTI_ERROR)
    for i, step in enumerate(result.applied, start=1):
        print(f"round {i}: {step}")
    print()
    print("after (type-checks: %s):" % result.ok)
    print("    " + result.source.replace("\n", "\n    "))


if __name__ == "__main__":
    main()
