let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
