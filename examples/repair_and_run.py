"""The full loop: diagnose, repair, and *run* the program.

Run:  python examples/repair_and_run.py

MiniML is a complete language implementation (type-checker *and*
interpreter), so we can close the loop the paper's IDE vision gestures at:
take an ill-typed homework program, let the search repair it, then execute
the repaired program and show its output.
"""

from repro.core import explain, fix_all
from repro.miniml import run_source

BROKEN = """(* Sum the squares of the even numbers, then announce the result. *)
let square n = n * n
let evens lst = List.filter (fun n -> n mod 2 = 0) lst
let sum lst = List.fold_left (fun acc n -> acc + n) 0 lst
let answer = sum (List.map square (evens [1; 2; 3; 4; 5; 6]))
let main = print_string ("answer = " ^ answer); print_newline ()
"""


def main() -> None:
    print("The broken program:")
    print("    " + BROKEN.replace("\n", "\n    "))

    diagnosis = explain(BROKEN)
    print("Checker says:")
    print("    " + (diagnosis.checker_message or "").replace("\n", "\n    "))
    print()
    print("Search says:")
    print("    " + diagnosis.render_best().replace("\n", "\n    "))
    print()

    repaired = fix_all(BROKEN)
    print(f"fix_all applied {repaired.rounds} change(s):")
    for step in repaired.applied:
        print("    " + step)
    print()
    print("Repaired source:")
    print("    " + repaired.source.replace("\n", "\n    "))

    if repaired.ok:
        _, output = run_source(repaired.source)
        print("Running it prints:")
        print("    " + output.replace("\n", "\n    "))


if __name__ == "__main__":
    main()
