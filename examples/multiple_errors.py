"""Triage: good messages when a function has several independent errors.

Run:  python examples/multiple_errors.py

Section 2.4's problem: with more than one type error, the only *whole*
change that makes the program type-check is deleting everything — useless.
Triage focuses on one error at a time while wildcarding the others away.

This demo shows three scenarios:
1. two bad operands buried in one let-chain,
2. the paper's Figure 4 pattern-match with clashing arms, and
3. the print/print_string scenario, where triage plus the removal-vs-
   adaptation trick pins down an unbound variable.
Each is run with and without triage so you can see what the flag buys.
"""

from repro.core import explain

SCENARIOS = {
    "Two independent errors in one function": """
let f a b =
  let x = 3 + true in
  let y = a + b in
  let z = 4 + "hi" in
  y + 1
""",
    "Figure 4: a pattern match with several errors": """
let g x y =
  match (x, y) with
    (0, []) -> []
  | (n, []) -> n
  | (_, 5) -> 5 + "hi"
let h = g 3 [1]
""",
    "print where print_string was meant (three times)": """
let f x =
  match x with
    0 -> print "zero"
  | 1 -> print "one"
  | _ -> print "other"
""",
}


def main() -> None:
    for title, source in SCENARIOS.items():
        print("=" * 72)
        print(title)
        print("=" * 72)

        without = explain(source, enable_triage=False)
        print("Without triage:")
        print("    " + without.render_best().replace("\n", "\n    "))
        print()

        with_triage = explain(source, enable_triage=True)
        print("With triage:")
        print("    " + with_triage.render_best().replace("\n", "\n    "))
        print()


if __name__ == "__main__":
    main()
